//! Quantized tensor and matrix containers.
//!
//! Activations are carried as unsigned 8-bit integers with a single per-layer
//! scale; weights are carried as signed 8-bit integers with one scale per
//! output channel (kernel). Dot products therefore need only two scaling
//! factors, matching the paper's "efficient hardware implementation" note.

use serde::{Deserialize, Serialize};

use nbsmt_tensor::error::TensorError;
use nbsmt_tensor::tensor::Matrix;

/// A quantized activation matrix: `u8` values plus one per-layer scale.
///
/// Rows correspond to output pixels (im2col rows), columns to the reduction
/// dimension `K`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantMatrix {
    values: Matrix<u8>,
    scale: f32,
}

impl QuantMatrix {
    /// Wraps a `u8` matrix and its scale.
    pub fn new(values: Matrix<u8>, scale: f32) -> Self {
        QuantMatrix { values, scale }
    }

    /// Creates a zero-filled quantized matrix.
    pub fn zeros(rows: usize, cols: usize, scale: f32) -> Self {
        QuantMatrix {
            values: Matrix::zeros(rows, cols),
            scale,
        }
    }

    /// The underlying integer matrix.
    pub fn values(&self) -> &Matrix<u8> {
        &self.values
    }

    /// Mutable access to the underlying integer matrix.
    pub fn values_mut(&mut self) -> &mut Matrix<u8> {
        &mut self.values
    }

    /// The per-layer scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.values.cols()
    }

    /// Dequantizes a single element.
    pub fn real(&self, r: usize, c: usize) -> f32 {
        *self.values.at(r, c) as f32 * self.scale
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        let total = self.values.as_slice().len();
        if total == 0 {
            return 0.0;
        }
        let zeros = self.values.as_slice().iter().filter(|&&v| v == 0).count();
        zeros as f64 / total as f64
    }

    /// Fraction of entries that fit in the 4-bit LSBs (value < 16),
    /// *excluding* exact zeros.
    pub fn narrow_fraction(&self) -> f64 {
        let total = self.values.as_slice().len();
        if total == 0 {
            return 0.0;
        }
        let narrow = self
            .values
            .as_slice()
            .iter()
            .filter(|&&v| v != 0 && v < 16)
            .count();
        narrow as f64 / total as f64
    }
}

/// A quantized weight matrix: `i8` values with one scale per column.
///
/// Rows correspond to the reduction dimension `K`, columns to output channels
/// (kernels), so `scales.len() == cols`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantWeightMatrix {
    values: Matrix<i8>,
    scales: Vec<f32>,
}

impl QuantWeightMatrix {
    /// Wraps an `i8` matrix and its per-column scales.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `scales.len()` does not
    /// equal the number of columns.
    pub fn new(values: Matrix<i8>, scales: Vec<f32>) -> Result<Self, TensorError> {
        if scales.len() != values.cols() {
            return Err(TensorError::InvalidArgument(format!(
                "expected {} per-kernel scales, got {}",
                values.cols(),
                scales.len()
            )));
        }
        Ok(QuantWeightMatrix { values, scales })
    }

    /// Creates a weight matrix with a single shared scale for every column.
    pub fn with_uniform_scale(values: Matrix<i8>, scale: f32) -> Self {
        let scales = vec![scale; values.cols()];
        QuantWeightMatrix { values, scales }
    }

    /// The underlying integer matrix.
    pub fn values(&self) -> &Matrix<i8> {
        &self.values
    }

    /// Mutable access to the underlying integer matrix.
    pub fn values_mut(&mut self) -> &mut Matrix<i8> {
        &mut self.values
    }

    /// Per-kernel scales (one per column).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Scale of column `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of range.
    pub fn scale(&self, c: usize) -> f32 {
        self.scales[c]
    }

    /// Number of rows (the reduction dimension).
    pub fn rows(&self) -> usize {
        self.values.rows()
    }

    /// Number of columns (output channels).
    pub fn cols(&self) -> usize {
        self.values.cols()
    }

    /// Dequantizes a single element.
    pub fn real(&self, r: usize, c: usize) -> f32 {
        *self.values.at(r, c) as f32 * self.scales[c]
    }

    /// Fraction of exactly-zero entries (pruned weights).
    pub fn sparsity(&self) -> f64 {
        let total = self.values.as_slice().len();
        if total == 0 {
            return 0.0;
        }
        let zeros = self.values.as_slice().iter().filter(|&&v| v == 0).count();
        zeros as f64 / total as f64
    }

    /// Fraction of entries representable in a signed 4-bit nibble
    /// (`-8 ..= 7`), excluding exact zeros.
    pub fn narrow_fraction(&self) -> f64 {
        let total = self.values.as_slice().len();
        if total == 0 {
            return 0.0;
        }
        let narrow = self
            .values
            .as_slice()
            .iter()
            .filter(|&&v| v != 0 && (-8..=7).contains(&v))
            .count();
        narrow as f64 / total as f64
    }
}

/// A quantized 4-D activation tensor `[N, C, H, W]` with a per-layer scale.
///
/// Used between layers by the quantized inference engine in `nbsmt-nn`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTensor {
    /// Integer values in row-major `[N, C, H, W]` order.
    pub values: Vec<u8>,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Per-layer scale.
    pub scale: f32,
}

impl QuantTensor {
    /// Creates a quantized tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the buffer length does
    /// not match the dimensions.
    pub fn new(values: Vec<u8>, dims: &[usize], scale: f32) -> Result<Self, TensorError> {
        let expected: usize = dims.iter().product();
        if values.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: values.len(),
            });
        }
        Ok(QuantTensor {
            values,
            dims: dims.to_vec(),
            scale,
        })
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.values.len()
    }

    /// Dequantizes every element into an `f32` buffer.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&v| v as f32 * self.scale).collect()
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let zeros = self.values.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quant_matrix_accessors() {
        let m = Matrix::from_vec(vec![0u8, 5, 16, 200], 2, 2).unwrap();
        let q = QuantMatrix::new(m, 0.5);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 2);
        assert_eq!(q.real(1, 1), 100.0);
        assert_eq!(q.scale(), 0.5);
        assert!((q.sparsity() - 0.25).abs() < 1e-12);
        // 5 is narrow (non-zero, < 16); 16 and 200 are not; 0 excluded.
        assert!((q.narrow_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quant_matrix_zeros() {
        let q = QuantMatrix::zeros(3, 4, 1.0);
        assert_eq!(q.rows(), 3);
        assert_eq!(q.cols(), 4);
        assert_eq!(q.sparsity(), 1.0);
        assert_eq!(q.narrow_fraction(), 0.0);
    }

    #[test]
    fn weight_matrix_per_kernel_scales() {
        let m = Matrix::from_vec(vec![1i8, -2, 3, -4], 2, 2).unwrap();
        let q = QuantWeightMatrix::new(m.clone(), vec![0.1, 0.2]).unwrap();
        assert!((q.real(0, 0) - 0.1).abs() < 1e-6);
        assert!((q.real(0, 1) - (-0.4)).abs() < 1e-6);
        assert_eq!(q.scale(1), 0.2);
        assert!(QuantWeightMatrix::new(m.clone(), vec![0.1]).is_err());
        let u = QuantWeightMatrix::with_uniform_scale(m, 0.3);
        assert_eq!(u.scales(), &[0.3, 0.3]);
    }

    #[test]
    fn weight_matrix_sparsity_and_narrowness() {
        let m = Matrix::from_vec(vec![0i8, 7, -8, 100, 0, -100], 3, 2).unwrap();
        let q = QuantWeightMatrix::with_uniform_scale(m, 1.0);
        assert!((q.sparsity() - 2.0 / 6.0).abs() < 1e-12);
        assert!((q.narrow_fraction() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quant_tensor_round_trip() {
        let t = QuantTensor::new(vec![0, 1, 2, 3], &[1, 1, 2, 2], 2.0).unwrap();
        assert_eq!(t.numel(), 4);
        assert_eq!(t.dequantize(), vec![0.0, 2.0, 4.0, 6.0]);
        assert!((t.sparsity() - 0.25).abs() < 1e-12);
        assert!(QuantTensor::new(vec![0, 1], &[3], 1.0).is_err());
    }
}
