//! Analytic-clipping post-training quantization baseline.
//!
//! Table IV compares the 2-threaded SySMT against two post-training
//! quantization methods (ACIQ and LBQ). Those implementations are not
//! available offline, so this module provides the comparator we substitute:
//! a clipping quantizer that limits the tensor range to an analytically
//! chosen multiple of the distribution scale before uniform quantization
//! (ACIQ-style), plus a plain min-max variant used as the naive baseline.
//! See ARCHITECTURE.md, substitution 3.

use nbsmt_tensor::tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::qtensor::QuantMatrix;
use crate::scheme::{BitWidth, QuantScheme};

/// Optimal clipping multiples of the Laplace scale parameter `b` for a given
/// bit width, following the analytic derivation used by clipping-based
/// post-training quantization (values rounded to one decimal).
fn laplace_clip_multiple(bits: BitWidth) -> f32 {
    match bits {
        BitWidth::Eight => 9.9,
        BitWidth::Four => 5.0,
    }
}

/// Result of clipping calibration: the clip value and the fraction of values
/// that were saturated by it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClipCalibration {
    /// The clipping threshold applied to the tensor magnitude.
    pub clip: f32,
    /// Fraction of elements whose magnitude exceeded the clip.
    pub saturated_fraction: f64,
}

/// Estimates the Laplace scale parameter `b` of a tensor as the mean absolute
/// deviation from zero (maximum-likelihood estimator for a zero-mean Laplace
/// distribution).
pub fn estimate_laplace_scale(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|v| v.abs()).sum::<f32>() / values.len() as f32
}

/// Computes the analytic clip threshold for a tensor at the given bit width.
pub fn analytic_clip(values: &[f32], bits: BitWidth) -> ClipCalibration {
    let b = estimate_laplace_scale(values);
    let clip = laplace_clip_multiple(bits) * b;
    let saturated = if values.is_empty() || clip <= 0.0 {
        0.0
    } else {
        values.iter().filter(|v| v.abs() > clip).count() as f64 / values.len() as f64
    };
    ClipCalibration {
        clip,
        saturated_fraction: saturated,
    }
}

/// Quantizes an activation matrix with analytic clipping (ACIQ-style): the
/// range is limited to the analytic clip before uniform unsigned
/// quantization at the requested bit width.
pub fn quantize_activations_clipped(
    x: &Matrix<f32>,
    scheme: &QuantScheme,
    bits: BitWidth,
) -> QuantMatrix {
    let calib = analytic_clip(x.as_slice(), bits);
    let clip = if calib.clip > 0.0 {
        calib.clip
    } else {
        x.as_slice().iter().fold(0.0_f32, |a, &v| a.max(v))
    };
    let q_levels = match bits {
        BitWidth::Eight => 255.0,
        BitWidth::Four => 15.0,
    };
    let scale = if clip > 0.0 { clip / q_levels } else { 1.0 };
    let data: Vec<u8> = x
        .as_slice()
        .iter()
        .map(|&v| (v.max(0.0).min(clip) / scale).round() as u8)
        .collect();
    let values = Matrix::from_vec(data, x.rows(), x.cols()).expect("same dims");
    // Express on the 8-bit grid: a 4-bit clipped value v stands for v*scale.
    QuantMatrix::new(values, scale * scheme_grid_ratio(scheme, bits))
}

fn scheme_grid_ratio(_scheme: &QuantScheme, _bits: BitWidth) -> f32 {
    // The clipped quantizer stores values directly on the grid implied by
    // `bits`, so no additional ratio is needed; kept as a hook for schemes
    // that renormalize onto the 8-bit grid.
    1.0
}

/// Mean squared quantization error of clipping quantization versus plain
/// min-max quantization at the same bit width. Used by the Table IV harness
/// to decide which comparator is stronger for a given tensor.
pub fn clipped_vs_minmax_mse(x: &Matrix<f32>, bits: BitWidth) -> (f64, f64) {
    let scheme = QuantScheme::activation_a8();
    let clipped = quantize_activations_clipped(x, &scheme, bits);
    let minmax = crate::quantize::quantize_activations(x, &scheme, None);
    let minmax = crate::quantize::reduce_activation_matrix(
        &minmax,
        match bits {
            BitWidth::Eight => BitWidth::Eight,
            BitWidth::Four => BitWidth::Four,
        },
    );
    let mse = |q: &QuantMatrix| -> f64 {
        x.as_slice()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let r = q.values().as_slice()[i] as f32 * q.scale();
                let d = (v.max(0.0) - r) as f64;
                d * d
            })
            .sum::<f64>()
            / x.as_slice().len().max(1) as f64
    };
    (mse(&clipped), mse(&minmax))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_scale_estimation() {
        let vals = vec![1.0, -1.0, 2.0, -2.0];
        assert!((estimate_laplace_scale(&vals) - 1.5).abs() < 1e-6);
        assert_eq!(estimate_laplace_scale(&[]), 0.0);
    }

    #[test]
    fn analytic_clip_saturates_tail() {
        // Mostly small values with one huge outlier: the outlier saturates.
        let mut vals = vec![0.1_f32; 1000];
        vals.push(100.0);
        let calib = analytic_clip(&vals, BitWidth::Four);
        assert!(calib.clip < 100.0);
        assert!(calib.saturated_fraction > 0.0);
    }

    #[test]
    fn clipping_shrinks_the_quantization_step_under_outliers() {
        // A bell-shaped tensor with heavy outliers: the analytic clip is far
        // below the raw maximum, so the 4-bit quantization step of the
        // clipped quantizer is much finer for the bulk of the distribution.
        let mut vals: Vec<f32> = (0..2000).map(|i| ((i % 37) as f32) * 0.01).collect();
        vals.push(50.0);
        vals.push(45.0);
        let m = Matrix::from_vec(vals.clone(), 2002, 1).unwrap();
        let calib = analytic_clip(&vals, BitWidth::Four);
        assert!(
            calib.clip < 10.0,
            "clip {} should ignore outliers",
            calib.clip
        );

        let q = quantize_activations_clipped(&m, &QuantScheme::activation_a8(), BitWidth::Four);
        // Effective step of the clipped 4-bit quantizer vs min-max's 50/15.
        assert!(q.scale() < 50.0 / 15.0);

        // The comparison helper returns finite, non-negative errors for both.
        let (clipped_mse, minmax_mse) = clipped_vs_minmax_mse(&m, BitWidth::Four);
        assert!(clipped_mse.is_finite() && clipped_mse >= 0.0);
        assert!(minmax_mse.is_finite() && minmax_mse >= 0.0);
    }

    #[test]
    fn clipped_quantization_is_nonnegative_and_bounded() {
        let m = Matrix::from_vec(vec![-1.0_f32, 0.0, 0.5, 3.0], 2, 2).unwrap();
        let q = quantize_activations_clipped(&m, &QuantScheme::activation_a8(), BitWidth::Four);
        assert!(q.values().as_slice().iter().all(|&v| v <= 15));
    }
}
