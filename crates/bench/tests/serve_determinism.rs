//! Determinism contract of the serving path, extending the
//! `tests/exec_equivalence.rs` approach (bit-exactness across backends and
//! host thread counts) from single GEMMs to the full queue → batcher →
//! session pipeline.
//!
//! A seeded load generator plus the virtual-clock scheduler must produce
//! **identical batch compositions** and **bit-identical model outputs** —
//! across repeated runs, across host thread counts 1/2/8, and across GEMM
//! backends. This is the property that makes `repro serve` reproducible on
//! any machine and is enforced by CI on every push.

use std::sync::Arc;

use nbsmt_bench::loadgen::{burst, closed_loop, open_poisson};
use nbsmt_bench::render_chrome_trace;
use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::control::{AutoscaleConfig, ControlConfig, PredictiveConfig, StealConfig};
use nbsmt_serve::faults::{FaultConfig, FaultEvent, FaultKind, FaultPlan};
use nbsmt_serve::pool::{PoolSnapshot, ReplicaPool};
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::session::Session;
use nbsmt_serve::sim::{
    simulate, simulate_pool, simulate_pool_controlled, simulate_pool_faulted, simulate_pool_traced,
    ArrivalProcess, PoolSimOutcome, ServiceModel, SimOutcome,
};
use nbsmt_serve::traffic::{SizeModel, TrafficModel};
use nbsmt_serve::TraceRecorder;
use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::quick_synthnet;

struct Fixture {
    registry: ModelRegistry,
    inputs: Vec<Tensor<f32>>,
}

fn fixture(seed: u64) -> Fixture {
    let trained = quick_synthnet(seed).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, seed.wrapping_add(1))
        .expect("calibration succeeds");
    let (inputs, _) = trained.sample_requests(24, seed.wrapping_add(2));
    Fixture { registry, inputs }
}

fn scheduler() -> SchedulerConfig {
    SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 500_000,
        },
        queue_capacity: 16,
    }
}

fn run(
    fixture: &Fixture,
    smt: SmtConfig,
    ctx: &ExecContext,
    arrivals: &ArrivalProcess,
) -> SimOutcome {
    let session = fixture
        .registry
        .compile("synthnet", smt)
        .expect("session compiles");
    simulate(
        &session,
        ctx,
        &fixture.inputs,
        arrivals,
        scheduler(),
        ServiceModel::default(),
    )
    .expect("simulation succeeds")
}

/// Logits as raw bit patterns: `f32` equality is too weak a check for the
/// contract — the serving path promises *bit*-identical outputs.
fn logit_bits(outcome: &SimOutcome) -> Vec<(u64, Vec<u32>)> {
    outcome
        .responses
        .iter()
        .map(|(id, inf)| (*id, inf.logits.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

#[test]
fn open_loop_is_identical_across_host_thread_counts() {
    let fixture = fixture(31);
    // Offered rate high enough that batches actually coalesce.
    let arrivals = open_poisson(1234, 5_000.0, 64);
    for smt in [
        SmtConfig::Dense,
        SmtConfig::sysmt_2t(),
        SmtConfig::sysmt_4t(),
    ] {
        let reference = run(&fixture, smt, &ExecContext::sequential(), &arrivals);
        assert!(reference.metrics.completed > 0);
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let outcome = run(&fixture, smt, &ctx, &arrivals);
            // Batch compositions: same ids in the same batches at the same
            // virtual times.
            assert_eq!(
                outcome.batches,
                reference.batches,
                "batch schedule must not depend on host threads ({threads}t, {:?})",
                smt.label()
            );
            // Outputs: bit-identical logits per request.
            assert_eq!(
                logit_bits(&outcome),
                logit_bits(&reference),
                "logits must be bit-identical ({threads}t, {:?})",
                smt.label()
            );
            // And the derived metrics agree exactly.
            assert_eq!(outcome.metrics, reference.metrics);
        }
    }
}

#[test]
fn open_loop_is_identical_across_gemm_backends() {
    let fixture = fixture(37);
    let arrivals = open_poisson(99, 3_000.0, 48);
    let reference = run(
        &fixture,
        SmtConfig::sysmt_2t(),
        &ExecContext::sequential(),
        &arrivals,
    );
    for backend in [
        GemmBackendKind::Naive,
        GemmBackendKind::Blocked,
        GemmBackendKind::Parallel,
    ] {
        let ctx = ExecContext::new(ExecConfig {
            threads: 4,
            backend,
            ..ExecConfig::default()
        });
        let outcome = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
        assert_eq!(outcome, reference, "backend {backend} diverged");
    }
}

#[test]
fn closed_loop_is_identical_across_host_thread_counts() {
    let fixture = fixture(41);
    let arrivals = closed_loop(3, 200_000, 30);
    let reference = run(
        &fixture,
        SmtConfig::sysmt_4t(),
        &ExecContext::sequential(),
        &arrivals,
    );
    assert_eq!(reference.metrics.completed, 30);
    for threads in [2usize, 8] {
        let outcome = run(
            &fixture,
            SmtConfig::sysmt_4t(),
            &ExecContext::with_threads(threads),
            &arrivals,
        );
        assert_eq!(outcome, reference);
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let fixture = fixture(43);
    let arrivals = open_poisson(7, 4_000.0, 40);
    let ctx = ExecContext::with_threads(8);
    let a = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
    let b = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
    assert_eq!(a, b);
}

#[test]
fn seeded_traces_differ_but_each_is_self_consistent() {
    let fixture = fixture(47);
    let ctx = ExecContext::sequential();
    let a = run(
        &fixture,
        SmtConfig::Dense,
        &ctx,
        &open_poisson(1, 4_000.0, 32),
    );
    let b = run(
        &fixture,
        SmtConfig::Dense,
        &ctx,
        &open_poisson(2, 4_000.0, 32),
    );
    assert_ne!(
        a.batches, b.batches,
        "different seeds must give different schedules"
    );
    assert_eq!(a.metrics.completed + a.metrics.rejected, 32);
    assert_eq!(b.metrics.completed + b.metrics.rejected, 32);
}

fn ladder(fixture: &Fixture) -> Vec<Arc<Session>> {
    fixture
        .registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles")
}

fn pool_config(replicas: usize, route: RoutePolicy) -> PoolConfig {
    PoolConfig {
        replicas,
        route,
        scheduler: SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 500_000,
            },
            queue_capacity: 32,
        },
        adaptive: AdaptivePolicy {
            depth_high: 3,
            depth_low: 1,
            p95_high_ns: 0,
            eval_every_batches: 1,
        },
    }
}

fn run_pool(fixture: &Fixture, ctx: &ExecContext, config: PoolConfig) -> PoolSimOutcome {
    // Offered rate high enough that queues build, batches coalesce, and the
    // adaptive ladder gets exercised.
    let arrivals = open_poisson(4242, 20_000.0, 72);
    simulate_pool(
        &ladder(fixture),
        ctx,
        &fixture.inputs,
        &arrivals,
        config,
        ServiceModel::default(),
    )
    .expect("pool simulation succeeds")
}

fn pool_logit_bits(outcome: &PoolSimOutcome) -> Vec<(u64, Vec<u32>)> {
    outcome
        .responses
        .iter()
        .map(|(id, inf)| (*id, inf.logits.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

#[test]
fn sharded_sim_is_identical_across_host_thread_counts_and_replicas() {
    let fixture = fixture(61);
    for replicas in [1usize, 2, 4] {
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::LeastOutstanding,
            RoutePolicy::Hashed,
            RoutePolicy::PowerOfTwo,
        ] {
            let config = pool_config(replicas, route);
            let reference = run_pool(&fixture, &ExecContext::sequential(), config);
            assert!(reference.metrics.completed > 0);
            for threads in [2usize, 8] {
                let outcome = run_pool(&fixture, &ExecContext::with_threads(threads), config);
                assert_eq!(
                    outcome.batches, reference.batches,
                    "batch schedule must not depend on host threads \
                     ({replicas} replicas, {route:?}, {threads}t)"
                );
                assert_eq!(
                    outcome.transitions, reference.transitions,
                    "mode transitions must not depend on host threads \
                     ({replicas} replicas, {route:?}, {threads}t)"
                );
                assert_eq!(pool_logit_bits(&outcome), pool_logit_bits(&reference));
                assert_eq!(outcome.metrics, reference.metrics);
                assert_eq!(outcome.per_replica, reference.per_replica);
            }
        }
    }
}

#[test]
fn sharded_sim_is_identical_across_gemm_backends() {
    let fixture = fixture(67);
    let config = pool_config(2, RoutePolicy::RoundRobin);
    let reference = run_pool(&fixture, &ExecContext::sequential(), config);
    assert!(
        reference.metrics.mode_transitions > 0,
        "the trace must exercise adaptive switching"
    );
    for backend in [
        GemmBackendKind::Naive,
        GemmBackendKind::Blocked,
        GemmBackendKind::Parallel,
    ] {
        let ctx = ExecContext::new(ExecConfig {
            threads: 4,
            backend,
            ..ExecConfig::default()
        });
        let outcome = run_pool(&fixture, &ctx, config);
        assert_eq!(outcome, reference, "backend {backend} diverged");
    }
}

#[test]
fn sharded_sim_repeated_runs_are_bit_identical() {
    let fixture = fixture(71);
    let ctx = ExecContext::with_threads(8);
    let a = run_pool(&fixture, &ctx, pool_config(4, RoutePolicy::Hashed));
    let b = run_pool(&fixture, &ctx, pool_config(4, RoutePolicy::Hashed));
    assert_eq!(a, b);
}

/// The lockstep half of the sharded determinism contract: with the whole
/// trace submitted before any worker runs (paused pool + burst trace), the
/// threaded [`ReplicaPool`] and the virtual-clock [`simulate_pool`] must
/// produce **identical batch compositions**, **identical mode transitions**,
/// and **bit-identical logits** — per replica, for every route policy and
/// replica count. Wall-clock quantities are the only divergence allowed.
#[test]
fn threaded_pool_and_simulator_agree_in_lockstep() {
    let fixture = fixture(73);
    let n = fixture.inputs.len(); // 24 requests, ids 0..24
    for replicas in [1usize, 2, 4] {
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::LeastOutstanding,
            RoutePolicy::Hashed,
            RoutePolicy::PowerOfTwo,
        ] {
            let config = pool_config(replicas, route);

            // Virtual-clock run over the burst trace.
            let sim = simulate_pool(
                &ladder(&fixture),
                &ExecContext::sequential(),
                &fixture.inputs,
                &burst(n),
                config,
                ServiceModel::default(),
            )
            .expect("pool simulation succeeds");

            // Threaded run: start paused, submit the same burst
            // single-threaded (id i → input i), then resume.
            let mut pool =
                ReplicaPool::start_paused(ladder(&fixture), config, ExecConfig::default(), true)
                    .expect("pool starts");
            let client = pool.client();
            let handles: Vec<_> = fixture
                .inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    client
                        .submit(i as u64, input.clone())
                        .expect("burst fits the queues")
                })
                .collect();
            pool.resume();
            let mut threaded_logits: Vec<(u64, Vec<u32>)> = handles
                .into_iter()
                .enumerate()
                .map(|(i, handle)| {
                    let inference = handle
                        .wait()
                        .expect("not cancelled")
                        .expect("no model error");
                    (
                        i as u64,
                        inference.logits.iter().map(|v| v.to_bits()).collect(),
                    )
                })
                .collect();
            let snapshot = pool.shutdown();

            // Batch compositions and modes, per replica in launch order.
            let sim_log: Vec<(usize, usize, Vec<u64>)> = (0..replicas)
                .flat_map(|r| {
                    sim.batches
                        .iter()
                        .filter(move |b| b.replica == r)
                        .map(|b| (b.replica, b.mode, b.request_ids.clone()))
                })
                .collect();
            let threaded_log: Vec<(usize, usize, Vec<u64>)> = snapshot
                .batch_log
                .iter()
                .map(|b| (b.replica, b.mode, b.keys.clone()))
                .collect();
            assert_eq!(
                threaded_log, sim_log,
                "batch compositions diverged ({replicas} replicas, {route:?})"
            );

            // Mode transitions, bit for bit.
            assert_eq!(
                snapshot.transitions, sim.transitions,
                "mode transitions diverged ({replicas} replicas, {route:?})"
            );

            // Logits, bit for bit (order-normalized: the threaded pool
            // completes in wall-clock order).
            let mut sim_logits = pool_logit_bits(&sim);
            sim_logits.sort_by_key(|(id, _)| *id);
            threaded_logits.sort_by_key(|(id, _)| *id);
            assert_eq!(
                threaded_logits, sim_logits,
                "logits diverged ({replicas} replicas, {route:?})"
            );

            // Both drivers agree on the aggregate counters that are not
            // wall-clock derived.
            assert_eq!(snapshot.total.completed, sim.metrics.completed);
            assert_eq!(snapshot.total.rejected, sim.metrics.rejected);
            assert_eq!(snapshot.total.batches, sim.metrics.batches);
            assert_eq!(
                snapshot.total.batches_per_mode,
                sim.metrics.batches_per_mode
            );
            assert_eq!(
                snapshot.total.mode_transitions,
                sim.metrics.mode_transitions
            );
        }
    }
}

/// The trace half of the lockstep contract: with a virtual-clock recorder
/// attached, the lockstep [`ReplicaPool`] and [`simulate_pool_traced`] must
/// export **byte-identical** Chrome traces for the same burst — every span's
/// stage, timing, batch/mode/layer identity, and per-layer `PeStats` — for
/// every replica count, host thread count, and GEMM backend. The canonical
/// snapshot order is what makes worker interleaving invisible here.
#[test]
fn lockstep_pool_and_simulator_emit_byte_identical_traces() {
    let fixture = fixture(97);
    let n = fixture.inputs.len();
    for replicas in [1usize, 2] {
        let config = pool_config(replicas, RoutePolicy::RoundRobin);

        let sim_recorder = TraceRecorder::virtual_clock();
        let sim = simulate_pool_traced(
            &ladder(&fixture),
            &ExecContext::sequential(),
            &fixture.inputs,
            &burst(n),
            config,
            ServiceModel::default(),
            None,
            Some(&sim_recorder),
        )
        .expect("traced pool simulation succeeds");
        assert_eq!(sim.metrics.completed, n as u64, "the burst fits the queues");
        let sim_snapshot = sim_recorder.snapshot();
        assert!(
            sim_snapshot.events.iter().any(|e| e.stats.is_some()),
            "kernel spans must surface PE stats"
        );
        let sim_trace = render_chrome_trace(&sim_snapshot);

        for exec in [
            ExecConfig {
                threads: 1,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 8,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 4,
                backend: GemmBackendKind::Blocked,
                ..ExecConfig::default()
            },
        ] {
            let mut pool = ReplicaPool::start_lockstep(
                ladder(&fixture),
                config,
                exec,
                true,
                ServiceModel::default(),
                &FaultPlan::none(),
            )
            .expect("lockstep pool starts");
            let recorder = Arc::new(TraceRecorder::virtual_clock());
            pool.set_recorder(recorder.clone());
            let client = pool.client();
            let handles: Vec<_> = fixture
                .inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    client
                        .submit(i as u64, input.clone())
                        .expect("burst fits the queues")
                })
                .collect();
            pool.resume();
            for handle in handles {
                let _ = handle
                    .wait()
                    .expect("not cancelled")
                    .expect("no model error");
            }
            // Shutdown joins the workers, so every kernel span recorded
            // outside the gate lock is in the ring before we snapshot.
            let _ = pool.shutdown();
            let pool_trace = render_chrome_trace(&recorder.snapshot());
            assert_eq!(
                pool_trace, sim_trace,
                "exported traces diverged ({replicas} replicas, {} {}t)",
                exec.backend, exec.threads
            );
        }
    }
}

/// Shedding under lockstep: when the burst overflows the per-replica
/// queues, the threaded pool and the simulator agree on *how many* requests
/// each replica shed (rejections are attributed to the replica the router
/// picked, in both drivers), not just on what was served.
#[test]
fn lockstep_shedding_attribution_matches() {
    let fixture = fixture(79);
    let n = fixture.inputs.len(); // 24 requests into 2×capacity-4 queues
    let config = PoolConfig {
        scheduler: SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 0,
            },
            queue_capacity: 4,
        },
        ..pool_config(2, RoutePolicy::RoundRobin)
    };
    let sim = simulate_pool(
        &ladder(&fixture),
        &ExecContext::sequential(),
        &fixture.inputs,
        &burst(n),
        config,
        ServiceModel::default(),
    )
    .expect("pool simulation succeeds");
    assert!(sim.metrics.rejected > 0, "the burst must overflow");

    let mut pool = ReplicaPool::start_paused(ladder(&fixture), config, ExecConfig::default(), true)
        .expect("pool starts");
    let client = pool.client();
    let mut handles = Vec::new();
    for (i, input) in fixture.inputs.iter().enumerate() {
        if let Ok(handle) = client.submit(i as u64, input.clone()) {
            handles.push(handle);
        }
    }
    pool.resume();
    for handle in handles {
        let _ = handle.wait().expect("accepted requests complete");
    }
    let snapshot = pool.shutdown();

    assert_eq!(snapshot.total.completed, sim.metrics.completed);
    assert_eq!(snapshot.total.rejected, sim.metrics.rejected);
    for (r, (threaded, simulated)) in snapshot
        .per_replica
        .iter()
        .zip(sim.per_replica.iter())
        .enumerate()
    {
        assert_eq!(
            threaded.rejected, simulated.rejected,
            "replica {r} shed counts diverged"
        );
        assert_eq!(
            threaded.completed, simulated.completed,
            "replica {r} completion counts diverged"
        );
    }
}

// ---- fault-injected lockstep determinism --------------------------------
//
// The same contract, with a seeded `FaultPlan` in the loop: crashes,
// stalls, straggle windows, and queue closes must replay bit-identically
// between the threaded lockstep pool and the virtual-clock simulator — on
// any host thread count, on any GEMM backend, for any replica count.

/// The whole burst through the discrete-event simulator under `plan`.
fn faulted_sim(fixture: &Fixture, config: PoolConfig, plan: &FaultPlan) -> PoolSimOutcome {
    simulate_pool_faulted(
        &ladder(fixture),
        &ExecContext::sequential(),
        &fixture.inputs,
        &burst(fixture.inputs.len()),
        config,
        ServiceModel::default(),
        Some(plan),
    )
    .expect("faulted pool simulation succeeds")
}

/// The same burst through a lockstep [`ReplicaPool`] under `plan`,
/// resolving every handle (completions keep their logit bits; cancellations
/// and rejections drop out). Returning at all is the no-deadlock half of
/// the contract.
fn faulted_lockstep(
    fixture: &Fixture,
    exec: ExecConfig,
    config: PoolConfig,
    plan: &FaultPlan,
) -> (PoolSnapshot, Vec<(u64, Vec<u32>)>) {
    let mut pool = ReplicaPool::start_lockstep(
        ladder(fixture),
        config,
        exec,
        true,
        ServiceModel::default(),
        plan,
    )
    .expect("lockstep pool starts");
    let client = pool.client();
    let handles: Vec<_> = fixture
        .inputs
        .iter()
        .enumerate()
        .map(|(i, input)| (i as u64, client.submit(i as u64, input.clone()).ok()))
        .collect();
    pool.resume();
    let mut completed = Vec::new();
    for (key, handle) in handles {
        // Rejected (None) and cancelled handles drop out of the logit set.
        if let Some(Ok(result)) = handle.map(|h| h.wait()) {
            let inference = result.expect("no model error");
            let bits = inference.logits.iter().map(|v| v.to_bits()).collect();
            completed.push((key, bits));
        }
    }
    (pool.shutdown(), completed)
}

/// Every observable the contract covers: batch compositions and modes,
/// transitions, handoff decisions, per-replica fault counters, the
/// *virtual* latency quantiles, and the completed requests' logit bits.
fn assert_lockstep_matches_sim(
    label: &str,
    snapshot: &PoolSnapshot,
    completed: &[(u64, Vec<u32>)],
    sim: &PoolSimOutcome,
) {
    let sim_log: Vec<(usize, usize, Vec<u64>, usize)> = sim
        .batches
        .iter()
        .map(|b| {
            (
                b.replica,
                b.mode,
                b.request_ids.clone(),
                b.queue_depth_after,
            )
        })
        .collect();
    let pool_log: Vec<(usize, usize, Vec<u64>, usize)> = snapshot
        .batch_log
        .iter()
        .map(|b| (b.replica, b.mode, b.keys.clone(), b.queue_depth_after))
        .collect();
    assert_eq!(pool_log, sim_log, "{label}: batch schedule");
    assert_eq!(
        snapshot.transitions, sim.transitions,
        "{label}: transitions"
    );
    assert_eq!(snapshot.handoffs, sim.handoffs, "{label}: handoffs");
    for (r, (pool_m, sim_m)) in snapshot
        .per_replica
        .iter()
        .zip(&sim.per_replica)
        .enumerate()
    {
        assert_eq!(pool_m.completed, sim_m.completed, "{label} r{r}: completed");
        assert_eq!(pool_m.rejected, sim_m.rejected, "{label} r{r}: rejected");
        assert_eq!(pool_m.crashes, sim_m.crashes, "{label} r{r}: crashes");
        assert_eq!(pool_m.handoffs, sim_m.handoffs, "{label} r{r}: handoffs");
        assert_eq!(
            pool_m.handoff_shed, sim_m.handoff_shed,
            "{label} r{r}: shed"
        );
        assert_eq!(pool_m.stalls, sim_m.stalls, "{label} r{r}: stalls");
        assert_eq!(pool_m.p50_ns, sim_m.p50_ns, "{label} r{r}: virtual p50");
        assert_eq!(pool_m.p95_ns, sim_m.p95_ns, "{label} r{r}: virtual p95");
        assert_eq!(pool_m.p99_ns, sim_m.p99_ns, "{label} r{r}: virtual p99");
    }
    let mut sim_bits = pool_logit_bits(sim);
    sim_bits.sort_by_key(|(id, _)| *id);
    assert_eq!(completed, sim_bits, "{label}: completed logits");
}

/// The tentpole determinism matrix: one seeded mixed-fault schedule per
/// replica count, replayed on every host shape. The generated plan scales
/// with the replica count (per-(replica, batch) coordinate draws), so each
/// pool size sees its own crashes, stalls, straggles, and closes.
#[test]
fn faulted_lockstep_is_identical_across_replicas_threads_and_backends() {
    let fixture = fixture(83);
    let faults = FaultConfig {
        seed: 9,
        horizon_batches: 12,
        crash_per_mille: 40,
        stall_per_mille: 60,
        stall_ns: 2_000_000,
        straggle_per_mille: 80,
        straggle_factor_x1024: 4096,
        straggle_window_batches: 3,
        close_per_mille: 20,
    };
    for replicas in [1usize, 2, 4] {
        let plan = FaultPlan::generate(&faults, replicas).expect("valid config");
        assert!(!plan.is_empty(), "the seeded schedule must fire faults");
        let config = pool_config(replicas, RoutePolicy::RoundRobin);
        let sim = faulted_sim(&fixture, config, &plan);
        assert!(sim.metrics.completed > 0);
        for exec in [
            ExecConfig {
                threads: 1,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 8,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 4,
                backend: GemmBackendKind::Blocked,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 4,
                backend: GemmBackendKind::Parallel,
                ..ExecConfig::default()
            },
        ] {
            let label = format!("{replicas} replicas, {} {}t", exec.backend, exec.threads);
            let (snapshot, completed) = faulted_lockstep(&fixture, exec, config, &plan);
            assert_lockstep_matches_sim(&label, &snapshot, &completed, &sim);
        }
    }
}

/// The p95 escalation trigger reads the clock abstraction, not the wall
/// clock, so it is *inside* the lockstep contract: with the depth trigger
/// parked out of reach, a fleet-wide straggle must escalate the ladder via
/// virtual p95 alone — identically in the simulator and the threaded pool.
#[test]
fn p95_escalation_is_part_of_the_lockstep_contract() {
    let fixture = fixture(89);
    // Measure the quiet virtual p95 with every trigger disarmed.
    let frozen = PoolConfig {
        adaptive: AdaptivePolicy {
            depth_high: usize::MAX,
            depth_low: 0,
            p95_high_ns: 0,
            eval_every_batches: 1,
        },
        ..pool_config(2, RoutePolicy::RoundRobin)
    };
    let quiet = faulted_sim(&fixture, frozen, &FaultPlan::none());
    assert!(quiet.transitions.is_empty(), "no trigger is armed");
    let threshold = quiet.metrics.p95_ns * 2;

    // Arm only the p95 trigger, at double the quiet tail.
    let config = PoolConfig {
        adaptive: AdaptivePolicy {
            p95_high_ns: threshold,
            ..frozen.adaptive
        },
        ..frozen
    };

    // A fleet-wide 4× straggle pushes the virtual p95 past the threshold…
    let plan = FaultPlan::from_events(
        (0..2)
            .map(|replica| FaultEvent {
                replica,
                at_batch: 1,
                kind: FaultKind::Straggle {
                    factor_x1024: 4096,
                    window_batches: 16,
                },
            })
            .collect(),
    );
    let sim = faulted_sim(&fixture, config, &plan);
    assert!(
        sim.transitions.iter().any(|t| t.to > t.from),
        "the straggle-inflated virtual p95 must escalate the ladder"
    );
    // …while the fault-free trace stays below it: the trigger reads the
    // same virtual clock in both runs, so this split is deterministic.
    let still = faulted_sim(&fixture, config, &FaultPlan::none());
    assert!(still.transitions.is_empty(), "quiet p95 stays under 2×");

    // The threaded lockstep pool replays the p95-triggered escalations bit
    // for bit, on any host thread count.
    for threads in [1usize, 8] {
        let exec = ExecConfig {
            threads,
            ..ExecConfig::default()
        };
        let label = format!("p95 escalation, {threads}t");
        let (snapshot, completed) = faulted_lockstep(&fixture, exec, config, &plan);
        assert_lockstep_matches_sim(&label, &snapshot, &completed, &sim);
    }
}

/// The traffic-model extension of the lockstep contract: a seeded **MMPP
/// burst trace with heterogeneous bounded-Pareto request sizes** replayed
/// through [`ReplicaPool::submit_virtual`] timed admission must match
/// [`simulate_pool`] over the equivalent [`ArrivalProcess::Generated`]
/// stream bit for bit — batch compositions, mode transitions, per-replica
/// counters, *virtual* latency quantiles, and the completed requests'
/// logits — for every replica count, host thread count, and GEMM backend.
/// The size model is a pure function of the router key, so both drivers
/// recompute identical per-request service times from the submitted keys.
#[test]
fn mmpp_sized_lockstep_is_identical_across_replicas_threads_and_backends() {
    let fixture = fixture(101);
    let n = 72u64;
    let model = TrafficModel::Mmpp {
        calm_mrps: 8_000_000,   // 8k rps calm
        burst_mrps: 60_000_000, // 60k rps bursts
        mean_calm_ns: 600_000,
        mean_burst_ns: 300_000,
    };
    let arrival_seed = 404;
    let service = ServiceModel {
        size: SizeModel::BoundedPareto {
            seed: 606,
            alpha_x1024: 1_536,
            min_x1024: 1_024,
            max_x1024: 8_192,
        },
        ..ServiceModel::default()
    };
    let arrivals = ArrivalProcess::Generated {
        model,
        seed: arrival_seed,
        n,
    };
    for replicas in [1usize, 2, 4] {
        let config = pool_config(replicas, RoutePolicy::Hashed);

        // Virtual-clock reference over the generated stream.
        let sim = simulate_pool(
            &ladder(&fixture),
            &ExecContext::sequential(),
            &fixture.inputs,
            &arrivals,
            config,
            service,
        )
        .expect("pool simulation succeeds");
        assert!(sim.metrics.completed > 0);
        assert!(
            sim.metrics.mode_transitions > 0,
            "the bursts must exercise the adaptive ladder"
        );

        for exec in [
            ExecConfig {
                threads: 1,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 8,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 4,
                backend: GemmBackendKind::Blocked,
                ..ExecConfig::default()
            },
        ] {
            // Threaded run: the identical stream (same model, same seed)
            // replayed as timed submissions on a paused lockstep pool. The
            // MMPP key is the stream index, so request i carries input
            // i % inputs.len() exactly like the simulator's id mapping.
            let mut pool = ReplicaPool::start_lockstep(
                ladder(&fixture),
                config,
                exec,
                true,
                service,
                &FaultPlan::none(),
            )
            .expect("lockstep pool starts");
            let handles: Vec<_> = model
                .generate(arrival_seed, n)
                .enumerate()
                .map(|(i, arrival)| {
                    let input = fixture.inputs[i % fixture.inputs.len()].clone();
                    (
                        arrival.key,
                        pool.submit_virtual(arrival.time_ns, arrival.key, input)
                            .expect("timed submissions are monotone pre-resume"),
                    )
                })
                .collect();
            pool.resume();
            let mut completed = Vec::new();
            for (key, handle) in handles {
                // Gate-shed requests cancel their handles and drop out,
                // mirroring the simulator's rejected-id accounting.
                if let Ok(result) = handle.wait() {
                    let inference = result.expect("no model error");
                    let bits = inference.logits.iter().map(|v| v.to_bits()).collect();
                    completed.push((key, bits));
                }
            }
            let snapshot = pool.shutdown();
            let label = format!(
                "mmpp sized lockstep, {replicas} replicas, {} {}t",
                exec.backend, exec.threads
            );
            assert_lockstep_matches_sim(&label, &snapshot, &completed, &sim);
        }
    }
}

/// The control-plane extension of the lockstep contract: with a
/// [`PoolController`] in the loop (predictive mode floor + autoscaling +
/// work stealing), the threaded lockstep pool and
/// [`simulate_pool_controlled`] must agree **bit for bit** on every
/// controller decision — the control-event log (autoscale steps, steal
/// events, predictive shifts with their timestamps), the replica-seconds
/// integral, the control counters, and everything the base contract already
/// covers (batch schedule, transitions, handoffs, quantiles, logits) — for
/// every replica count, host thread count, and GEMM backend.
#[test]
fn controlled_lockstep_is_identical_across_replicas_threads_and_backends() {
    let fixture = fixture(103);
    let n = 72u64;
    let model = TrafficModel::Mmpp {
        calm_mrps: 8_000_000,
        burst_mrps: 60_000_000,
        mean_calm_ns: 600_000,
        mean_burst_ns: 300_000,
    };
    let arrival_seed = 404;
    let service = ServiceModel {
        size: SizeModel::BoundedPareto {
            seed: 606,
            alpha_x1024: 1_536,
            min_x1024: 1_024,
            max_x1024: 8_192,
        },
        ..ServiceModel::default()
    };
    let arrivals = ArrivalProcess::Generated {
        model,
        seed: arrival_seed,
        n,
    };
    for replicas in [1usize, 2, 4] {
        let config = pool_config(replicas, RoutePolicy::Hashed);
        let control = ControlConfig {
            alpha_x1024: 512,
            window_ns: 100_000,
            predictive: Some(PredictiveConfig {
                util_high_x1024: 900,
                util_low_x1024: 300,
            }),
            autoscale: Some(AutoscaleConfig {
                min_replicas: 1,
                max_replicas: replicas,
                util_high_x1024: 700,
                util_low_x1024: 200,
            }),
            steal: Some(StealConfig {
                imbalance_threshold: 2,
                max_steal: 2,
            }),
        };

        // Virtual-clock reference with the controller in the loop.
        let sim = simulate_pool_controlled(
            &ladder(&fixture),
            &ExecContext::sequential(),
            &fixture.inputs,
            &arrivals,
            config,
            service,
            control,
            None,
            None,
        )
        .expect("controlled pool simulation succeeds");
        assert!(sim.metrics.completed > 0);
        assert!(
            !sim.control_events.is_empty(),
            "the burst trace must exercise the controller ({replicas} replicas)"
        );

        for exec in [
            ExecConfig {
                threads: 1,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 8,
                backend: GemmBackendKind::Naive,
                ..ExecConfig::default()
            },
            ExecConfig {
                threads: 4,
                backend: GemmBackendKind::Blocked,
                ..ExecConfig::default()
            },
        ] {
            let mut pool = ReplicaPool::start_lockstep_controlled(
                ladder(&fixture),
                config,
                exec,
                true,
                service,
                &FaultPlan::none(),
                control,
            )
            .expect("controlled lockstep pool starts");
            let handles: Vec<_> = model
                .generate(arrival_seed, n)
                .enumerate()
                .map(|(i, arrival)| {
                    let input = fixture.inputs[i % fixture.inputs.len()].clone();
                    (
                        arrival.key,
                        pool.submit_virtual(arrival.time_ns, arrival.key, input)
                            .expect("timed submissions are monotone pre-resume"),
                    )
                })
                .collect();
            pool.resume();
            let mut completed = Vec::new();
            for (key, handle) in handles {
                if let Ok(result) = handle.wait() {
                    let inference = result.expect("no model error");
                    let bits = inference.logits.iter().map(|v| v.to_bits()).collect();
                    completed.push((key, bits));
                }
            }
            let snapshot = pool.shutdown();
            let label = format!(
                "controlled lockstep, {replicas} replicas, {} {}t",
                exec.backend, exec.threads
            );
            assert_lockstep_matches_sim(&label, &snapshot, &completed, &sim);
            // The controller-specific observables: every decision, bit for
            // bit, in decision order, plus the replica-seconds integral and
            // the pool-level control counters.
            assert_eq!(
                snapshot.control_events, sim.control_events,
                "{label}: control events"
            );
            assert_eq!(
                snapshot.dropped_control_events, sim.dropped_control_events,
                "{label}: dropped control events"
            );
            assert_eq!(snapshot.replica_ns, sim.replica_ns, "{label}: replica-ns");
            assert_eq!(
                (
                    snapshot.total.predictive_shifts,
                    snapshot.total.scale_ups,
                    snapshot.total.scale_downs,
                    snapshot.total.steals,
                    snapshot.total.stolen_requests,
                ),
                (
                    sim.metrics.predictive_shifts,
                    sim.metrics.scale_ups,
                    sim.metrics.scale_downs,
                    sim.metrics.steals,
                    sim.metrics.stolen_requests,
                ),
                "{label}: control counters"
            );
        }
    }
}

#[test]
fn overload_backpressure_is_deterministic_too() {
    let fixture = fixture(53);
    // Far past the virtual service rate: admission control must shed, and
    // must shed the *same* requests every time, on every host config.
    let arrivals = open_poisson(11, 1_000_000.0, 96);
    let reference = run(
        &fixture,
        SmtConfig::Dense,
        &ExecContext::sequential(),
        &arrivals,
    );
    assert!(reference.metrics.rejected > 0, "overload must shed load");
    assert_eq!(reference.metrics.completed + reference.metrics.rejected, 96);
    for threads in [2usize, 8] {
        let outcome = run(
            &fixture,
            SmtConfig::Dense,
            &ExecContext::with_threads(threads),
            &arrivals,
        );
        assert_eq!(outcome.rejected_ids, reference.rejected_ids);
        assert_eq!(outcome, reference);
    }
}
