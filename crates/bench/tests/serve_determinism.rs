//! Determinism contract of the serving path, extending the
//! `tests/exec_equivalence.rs` approach (bit-exactness across backends and
//! host thread counts) from single GEMMs to the full queue → batcher →
//! session pipeline.
//!
//! A seeded load generator plus the virtual-clock scheduler must produce
//! **identical batch compositions** and **bit-identical model outputs** —
//! across repeated runs, across host thread counts 1/2/8, and across GEMM
//! backends. This is the property that makes `repro serve` reproducible on
//! any machine and is enforced by CI on every push.

use nbsmt_bench::loadgen::{closed_loop, open_poisson};
use nbsmt_serve::config::{BatchPolicy, SchedulerConfig, SmtConfig};
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::sim::{simulate, ArrivalProcess, ServiceModel, SimOutcome};
use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::quick_synthnet;

struct Fixture {
    registry: ModelRegistry,
    inputs: Vec<Tensor<f32>>,
}

fn fixture(seed: u64) -> Fixture {
    let trained = quick_synthnet(seed).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, seed.wrapping_add(1))
        .expect("calibration succeeds");
    let (inputs, _) = trained.sample_requests(24, seed.wrapping_add(2));
    Fixture { registry, inputs }
}

fn scheduler() -> SchedulerConfig {
    SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 4,
            max_wait_ns: 500_000,
        },
        queue_capacity: 16,
    }
}

fn run(
    fixture: &Fixture,
    smt: SmtConfig,
    ctx: &ExecContext,
    arrivals: &ArrivalProcess,
) -> SimOutcome {
    let session = fixture
        .registry
        .compile("synthnet", smt)
        .expect("session compiles");
    simulate(
        &session,
        ctx,
        &fixture.inputs,
        arrivals,
        scheduler(),
        ServiceModel::default(),
    )
    .expect("simulation succeeds")
}

/// Logits as raw bit patterns: `f32` equality is too weak a check for the
/// contract — the serving path promises *bit*-identical outputs.
fn logit_bits(outcome: &SimOutcome) -> Vec<(u64, Vec<u32>)> {
    outcome
        .responses
        .iter()
        .map(|(id, inf)| (*id, inf.logits.iter().map(|v| v.to_bits()).collect()))
        .collect()
}

#[test]
fn open_loop_is_identical_across_host_thread_counts() {
    let fixture = fixture(31);
    // Offered rate high enough that batches actually coalesce.
    let arrivals = open_poisson(1234, 5_000.0, 64);
    for smt in [
        SmtConfig::Dense,
        SmtConfig::sysmt_2t(),
        SmtConfig::sysmt_4t(),
    ] {
        let reference = run(&fixture, smt, &ExecContext::sequential(), &arrivals);
        assert!(reference.metrics.completed > 0);
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let outcome = run(&fixture, smt, &ctx, &arrivals);
            // Batch compositions: same ids in the same batches at the same
            // virtual times.
            assert_eq!(
                outcome.batches,
                reference.batches,
                "batch schedule must not depend on host threads ({threads}t, {:?})",
                smt.label()
            );
            // Outputs: bit-identical logits per request.
            assert_eq!(
                logit_bits(&outcome),
                logit_bits(&reference),
                "logits must be bit-identical ({threads}t, {:?})",
                smt.label()
            );
            // And the derived metrics agree exactly.
            assert_eq!(outcome.metrics, reference.metrics);
        }
    }
}

#[test]
fn open_loop_is_identical_across_gemm_backends() {
    let fixture = fixture(37);
    let arrivals = open_poisson(99, 3_000.0, 48);
    let reference = run(
        &fixture,
        SmtConfig::sysmt_2t(),
        &ExecContext::sequential(),
        &arrivals,
    );
    for backend in [
        GemmBackendKind::Naive,
        GemmBackendKind::Blocked,
        GemmBackendKind::Parallel,
    ] {
        let ctx = ExecContext::new(ExecConfig {
            threads: 4,
            backend,
            ..ExecConfig::default()
        });
        let outcome = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
        assert_eq!(outcome, reference, "backend {backend} diverged");
    }
}

#[test]
fn closed_loop_is_identical_across_host_thread_counts() {
    let fixture = fixture(41);
    let arrivals = closed_loop(3, 200_000, 30);
    let reference = run(
        &fixture,
        SmtConfig::sysmt_4t(),
        &ExecContext::sequential(),
        &arrivals,
    );
    assert_eq!(reference.metrics.completed, 30);
    for threads in [2usize, 8] {
        let outcome = run(
            &fixture,
            SmtConfig::sysmt_4t(),
            &ExecContext::with_threads(threads),
            &arrivals,
        );
        assert_eq!(outcome, reference);
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let fixture = fixture(43);
    let arrivals = open_poisson(7, 4_000.0, 40);
    let ctx = ExecContext::with_threads(8);
    let a = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
    let b = run(&fixture, SmtConfig::sysmt_2t(), &ctx, &arrivals);
    assert_eq!(a, b);
}

#[test]
fn seeded_traces_differ_but_each_is_self_consistent() {
    let fixture = fixture(47);
    let ctx = ExecContext::sequential();
    let a = run(
        &fixture,
        SmtConfig::Dense,
        &ctx,
        &open_poisson(1, 4_000.0, 32),
    );
    let b = run(
        &fixture,
        SmtConfig::Dense,
        &ctx,
        &open_poisson(2, 4_000.0, 32),
    );
    assert_ne!(
        a.batches, b.batches,
        "different seeds must give different schedules"
    );
    assert_eq!(a.metrics.completed + a.metrics.rejected, 32);
    assert_eq!(b.metrics.completed + b.metrics.rejected, 32);
}

#[test]
fn overload_backpressure_is_deterministic_too() {
    let fixture = fixture(53);
    // Far past the virtual service rate: admission control must shed, and
    // must shed the *same* requests every time, on every host config.
    let arrivals = open_poisson(11, 1_000_000.0, 96);
    let reference = run(
        &fixture,
        SmtConfig::Dense,
        &ExecContext::sequential(),
        &arrivals,
    );
    assert!(reference.metrics.rejected > 0, "overload must shed load");
    assert_eq!(reference.metrics.completed + reference.metrics.rejected, 96);
    for threads in [2usize, 8] {
        let outcome = run(
            &fixture,
            SmtConfig::Dense,
            &ExecContext::with_threads(threads),
            &arrivals,
        );
        assert_eq!(outcome.rejected_ids, reference.rejected_ids);
        assert_eq!(outcome, reference);
    }
}
