//! Property tests for the seeded traffic-model family behind the
//! million-request load generator (`nbsmt_bench::loadgen` over
//! `nbsmt_serve::traffic`).
//!
//! The generators are lazy streams, so the properties are checked by
//! folding over the iterator — never by materializing a trace. Three
//! families of properties:
//!
//! 1. **Stream shape** — every model yields exactly `n` arrivals in
//!    monotone non-decreasing time order, bit-identically per seed, and
//!    differently across seeds.
//! 2. **Stationarity** — the MMPP's measured state-occupancy fractions
//!    converge to the stationary distribution of its two-state chain,
//!    `π_calm = mean_calm / (mean_calm + mean_burst)`.
//! 3. **Size-model soundness** — bounded-Pareto sizes respect their
//!    `[min, max]` bounds for every key, are a pure function of
//!    `(seed, key)`, and move when the size seed moves.

use nbsmt_bench::loadgen::{diurnal, lazy_poisson, mmpp, pareto_sizes, sessions};
use nbsmt_serve::sim::ArrivalProcess;
use nbsmt_serve::traffic::{GeneratedArrival, TrafficModel};

/// Unpacks a loadgen builder's output into its model/seed/n triple.
fn generated(process: ArrivalProcess) -> (TrafficModel, u64, u64) {
    match process {
        ArrivalProcess::Generated { model, seed, n } => (model, seed, n),
        other => panic!("loadgen lazy builders must build Generated, got {other:?}"),
    }
}

/// Folds a stream into `(count, last_time, monotone, fingerprint)` without
/// materializing it — the constant-memory discipline under test applies to
/// the tests too.
fn fold_stream(model: TrafficModel, seed: u64, n: u64) -> (u64, u64, bool, u64) {
    let mut count = 0u64;
    let mut last = 0u64;
    let mut monotone = true;
    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for GeneratedArrival { time_ns, key } in model.generate(seed, n) {
        monotone &= time_ns >= last;
        last = time_ns;
        count += 1;
        for word in [time_ns, key] {
            fingerprint = (fingerprint ^ word).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (count, last, monotone, fingerprint)
}

#[test]
fn every_model_streams_monotone_exact_length_per_seed() {
    let cases = [
        generated(lazy_poisson(0, 4_000.0, 0)),
        generated(lazy_poisson(0, 4_000.0, 2_000)),
        generated(mmpp(0, 800.0, 12_000.0, 3_000_000, 1_000_000, 2_000)),
        generated(diurnal(0, 500.0, 6_000.0, 40_000_000, 2_000)),
        generated(sessions(0, 1_500.0, 5, 200_000, 2_000)),
    ];
    for (model, _, n) in cases {
        for seed in [1u64, 7, 0xdead_beef, u64::MAX] {
            let (count, _, monotone, print_a) = fold_stream(model, seed, n);
            assert_eq!(count, n, "{model:?} seed {seed}: stream length");
            assert!(monotone, "{model:?} seed {seed}: non-decreasing times");
            let (_, _, _, print_b) = fold_stream(model, seed, n);
            assert_eq!(
                print_a, print_b,
                "{model:?} seed {seed}: same seed, same stream"
            );
        }
        if n > 0 {
            let (_, _, _, a) = fold_stream(model, 1, n);
            let (_, _, _, b) = fold_stream(model, 2, n);
            assert_ne!(a, b, "{model:?}: different seeds, different streams");
        }
    }
}

#[test]
fn mmpp_burst_state_actually_accelerates_arrivals() {
    // Same seed, same sojourn structure: cranking only the burst rate must
    // finish the same number of arrivals no later (more arrivals per burst
    // sojourn, identical calm behaviour is not guaranteed draw-by-draw, but
    // the end-to-end span must shrink for a 10× hotter burst state).
    let (mild, seed, n) = generated(mmpp(0, 1_000.0, 2_000.0, 2_000_000, 2_000_000, 4_000));
    let (hot, _, _) = generated(mmpp(0, 1_000.0, 20_000.0, 2_000_000, 2_000_000, 4_000));
    let (_, mild_end, _, _) = fold_stream(mild, seed, n);
    let (_, hot_end, _, _) = fold_stream(hot, seed, n);
    assert!(
        hot_end < mild_end,
        "hot bursts must compress the stream: {hot_end} !< {mild_end}"
    );
}

#[test]
fn mmpp_occupancy_converges_to_the_stationary_distribution() {
    // A two-state chain with exponential sojourns spends
    // mean_calm / (mean_calm + mean_burst) of its time calm in the long
    // run. 3 ms calm / 1 ms burst → π_calm = 3/4. The stream is long
    // enough (≈ 10^4 sojourn cycles) that the sample fraction should land
    // within a few percent for any seed.
    let mean_calm_ns = 3_000_000u64;
    let mean_burst_ns = 1_000_000u64;
    let expected = mean_calm_ns as f64 / (mean_calm_ns + mean_burst_ns) as f64;
    let (model, _, n) = generated(mmpp(
        0,
        2_000.0,
        20_000.0,
        mean_calm_ns,
        mean_burst_ns,
        200_000,
    ));
    for seed in [3u64, 17, 4_242] {
        let mut stream = model.generate(seed, n);
        let mut count = 0u64;
        for _ in stream.by_ref() {
            count += 1;
        }
        assert_eq!(count, n);
        let [calm_ns, burst_ns] = stream.state_occupancy_ns();
        assert!(calm_ns > 0 && burst_ns > 0, "both states must be visited");
        let fraction = calm_ns as f64 / (calm_ns + burst_ns) as f64;
        assert!(
            (fraction - expected).abs() < 0.05,
            "seed {seed}: calm occupancy {fraction:.4} vs stationary {expected:.4}"
        );
    }
}

#[test]
fn non_mmpp_models_report_zero_occupancy() {
    let (model, seed, n) = generated(lazy_poisson(9, 3_000.0, 512));
    let mut stream = model.generate(seed, n);
    for _ in stream.by_ref() {}
    assert_eq!(stream.state_occupancy_ns(), [0, 0]);
}

#[test]
fn bounded_pareto_sizes_stay_in_bounds_and_follow_their_seed() {
    let (lo, hi) = (1024u64, 8_192u64);
    let model = pareto_sizes(11, 1_536, lo, hi);
    let other_seed = pareto_sizes(12, 1_536, lo, hi);
    let mut diverged = false;
    let mut spread = false;
    for key in 0..8_192u64 {
        let size = model.size_x1024(key);
        assert!(
            (lo..=hi).contains(&size),
            "key {key}: size {size} outside [{lo}, {hi}]"
        );
        assert_eq!(
            size,
            model.size_x1024(key),
            "key {key}: size must be a pure function of (seed, key)"
        );
        diverged |= other_seed.size_x1024(key) != size;
        spread |= size > lo;
    }
    assert!(diverged, "a different size seed must move some sizes");
    assert!(
        spread,
        "the Pareto tail must produce sizes above the minimum"
    );
}

#[test]
fn heavier_tails_mean_larger_average_sizes() {
    // Shape α controls the tail: a smaller α (heavier tail) must raise the
    // empirical mean over a fixed key population, with both means strictly
    // inside the bounds.
    let keys = 0..16_384u64;
    let mean = |alpha_x1024: u64| {
        let model = pareto_sizes(21, alpha_x1024, 1_024, 32_768);
        let total: u64 = keys.clone().map(|k| model.size_x1024(k)).sum();
        total as f64 / 16_384.0
    };
    let heavy = mean(1_100); // α ≈ 1.07
    let light = mean(3_072); // α = 3
    assert!(
        heavy > light,
        "heavier tail must raise the mean: {heavy:.1} !> {light:.1}"
    );
    assert!(light > 1_024.0 && heavy < 32_768.0);
}

#[test]
fn session_streams_key_by_user_for_affinity_routing() {
    // Sessions emit the user id as the router key: keys repeat (a session's
    // requests share one key, so hashed routing pins them to a replica) and
    // each key appears at most requests_per_user times.
    let (model, seed, n) = generated(sessions(5, 2_000.0, 4, 150_000, 4_000));
    let mut per_user = std::collections::HashMap::new();
    for arrival in model.generate(seed, n) {
        *per_user.entry(arrival.key).or_insert(0u64) += 1;
    }
    assert!(
        per_user.values().any(|&c| c > 1),
        "session keys must repeat"
    );
    assert!(
        per_user.values().all(|&c| c <= 4),
        "at most 4 requests/user"
    );
    assert_eq!(per_user.values().sum::<u64>(), n);
}
