//! Constant-memory regression test for the million-request regime.
//!
//! `simulate_pool_stats` promises O(1) memory in the request count: the
//! arrival stream is a lazy generator (never a `Vec`), and every snapshot
//! collection is hard-capped — batch log at `BATCH_LOG_CAP`, transition log
//! at `TRANSITION_LOG_CAP`, rejection log at `REJECTION_LOG_CAP`, responses
//! skipped entirely on the stats path (counted in `dropped_responses`), and
//! the trace ring at its build capacity. This test drives 10^6 requests of
//! bursty MMPP traffic with heavy-tailed sizes through the simulator and
//! asserts that **every one of those collections sits exactly at its
//! documented cap with a non-zero dropped counter** — the observable
//! signature of flat peak memory. If someone removes a cap (or starts
//! materializing arrivals), a dropped counter goes to zero or a length
//! leaves its cap, and this test fails.

use nbsmt_bench::loadgen::{mmpp, pareto_sizes};
use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
    BATCH_LOG_CAP, REJECTION_LOG_CAP, TRANSITION_LOG_CAP,
};
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::sim::{simulate_pool_stats, ServiceModel};
use nbsmt_serve::TraceRecorder;
use nbsmt_workloads::synthnet::quick_synthnet;

const REQUESTS: u64 = 1_000_000;

#[test]
fn million_request_sim_keeps_every_collection_at_its_cap() {
    let trained = quick_synthnet(13).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, 14)
        .expect("calibration succeeds");
    let ladder = registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");
    let (inputs, _) = trained.sample_requests(8, 15);

    // Heavy-tailed sizes; the offered load is anchored to the *size-mean*
    // dense service rate so the calm/burst split below lands where
    // intended regardless of the tail draw.
    let size = pareto_sizes(501, 1_536, 1_024, 8_192);
    let service = ServiceModel {
        size,
        ..ServiceModel::default()
    };
    let mean_size_x1024: u64 = (0..4_096).map(|k| size.size_x1024(k)).sum::<u64>() / 4_096;
    let dense_single_ns = service.single_ns(&ladder[0]);
    let dense_rate_rps = 1e9 / dense_single_ns as f64 * 1_024.0 / mean_size_x1024 as f64;

    // MMPP dimensioned to stress every cap at once: calm at 0.5× dense
    // capacity (queues drain, the ladder steps down), bursts at 6× (past
    // even the 4T ceiling, so admission sheds), ~64 arrivals per burst
    // sojourn → ~10^4 calm/burst cycles across 10^6 requests, each cycle
    // walking the dense→2T→4T ladder up and back down.
    let burst_rps = 6.0 * dense_rate_rps;
    let mean_burst_ns = ((64.0 / burst_rps) * 1e9).max(1.0) as u64;
    let arrivals = mmpp(
        777,
        0.5 * dense_rate_rps,
        burst_rps,
        mean_burst_ns * 4,
        mean_burst_ns,
        REQUESTS,
    );

    let pool = PoolConfig {
        replicas: 1,
        route: RoutePolicy::Hashed,
        scheduler: SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_ns: 2_000_000,
            },
            queue_capacity: 8,
        },
        adaptive: AdaptivePolicy {
            depth_high: 2,
            depth_low: 1,
            p95_high_ns: 0,
            eval_every_batches: 1,
        },
    };

    let recorder = TraceRecorder::virtual_clock();
    let outcome = simulate_pool_stats(
        &ladder,
        &inputs,
        &arrivals,
        pool,
        service,
        None,
        Some(&recorder),
    )
    .expect("stats simulation succeeds");

    // Every request is accounted for, none is lost to the caps.
    assert_eq!(
        outcome.metrics.completed + outcome.metrics.rejected,
        REQUESTS,
        "admission accounting must cover the whole stream"
    );
    assert!(outcome.metrics.completed > 0 && outcome.metrics.rejected > 0);

    // Batch log: capped, with overflow counted.
    assert_eq!(outcome.batches.len(), BATCH_LOG_CAP, "batch log cap");
    assert!(outcome.dropped_batches > 0, "batch log must overflow");
    assert_eq!(
        outcome.batches.len() as u64 + outcome.dropped_batches,
        outcome.metrics.batches,
        "batch log + dropped = batches launched"
    );

    // Transition log: the twitchy adaptive policy crosses the ladder tens
    // of thousands of times; the log stays at its cap.
    assert_eq!(
        outcome.transitions.len(),
        TRANSITION_LOG_CAP,
        "transition log cap"
    );
    assert!(
        outcome.dropped_transitions > 0,
        "transition log must overflow"
    );
    assert_eq!(
        outcome.transitions.len() as u64 + outcome.dropped_transitions,
        outcome.metrics.mode_transitions,
        "transition log + dropped = transitions taken"
    );

    // Rejection log: 6× bursts past the 4T ceiling shed far more than the
    // cap; the ids list stays bounded.
    assert_eq!(
        outcome.rejected_ids.len(),
        REJECTION_LOG_CAP,
        "rejection log cap"
    );
    assert!(
        outcome.dropped_rejections > 0,
        "rejection log must overflow"
    );
    assert_eq!(
        outcome.rejected_ids.len() as u64 + outcome.dropped_rejections,
        outcome.metrics.rejected,
        "rejection log + dropped = requests shed"
    );

    // Stats path: no logits are ever held; every completion is counted as
    // a dropped response instead.
    assert!(
        outcome.responses.is_empty(),
        "stats path holds no responses"
    );
    assert_eq!(
        outcome.dropped_responses, outcome.metrics.completed,
        "every completion must be accounted as a dropped response"
    );

    // Trace ring: millions of events through a 64Ki ring — full, at
    // capacity, with the overwrite counter running.
    let snapshot = recorder.snapshot();
    assert_eq!(snapshot.events.len(), snapshot.capacity, "trace ring full");
    assert!(snapshot.dropped > 0, "trace ring must have overwritten");

    // The virtual clock actually advanced through the whole stream.
    assert!(outcome.makespan_ns > 0);
}
