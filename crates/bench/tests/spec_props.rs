//! Property and golden tests for the declarative run-spec API.
//!
//! Three contracts the `repro` driver and the committed `examples/specs/`
//! files depend on:
//!
//! * **Round trip**: `RunSpec::parse(&spec.render()) == spec`, bit-exact,
//!   for arbitrary valid specs (seeds up to 2^53−1, every scale/backend,
//!   optional params present or absent).
//! * **Validation**: bad values — zero thread counts, zero queue
//!   capacities, inverted adaptive thresholds, zero tile sizes — are typed
//!   errors through the workspace-wide `Validate` trait, never clamps.
//! * **Golden `--list`**: the binary's experiment list is generated from
//!   the registry, so the two can never drift apart.

use proptest::prelude::*;

use nbsmt_bench::spec::MAX_SPEC_INT;
use nbsmt_bench::{ExperimentRegistry, ParamKey, RunSpec, Scale, SpecError};
use nbsmt_serve::config::{AdaptivePolicy, BatchPolicy, ConfigError, PoolConfig, SchedulerConfig};
use nbsmt_serve::faults::FaultConfig;
use nbsmt_tensor::exec::{ExecConfig, GemmBackendKind};
use nbsmt_tensor::validate::{ExecConfigError, Validate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grows an arbitrary *valid* spec from a seed: every experiment name the
/// registry knows (plus free-form names — round-tripping does not require
/// registration), both scales, all backends, seeds across the full
/// JSON-exact range, optional params in all four presence combinations.
fn gen_spec(rng: &mut StdRng) -> RunSpec {
    let registry = ExperimentRegistry::standard();
    let names: Vec<String> = registry.iter().map(|e| e.name().to_string()).collect();
    let experiment = match rng.gen_range(0..names.len() + 2) {
        i if i < names.len() => names[i].clone(),
        i if i == names.len() => "all".to_string(),
        _ => format!("custom_{}", rng.gen_range(0..100)),
    };
    let mut spec = RunSpec::defaults(&experiment);
    spec.scale = if rng.gen::<u64>() & 1 == 0 {
        Scale::Quick
    } else {
        Scale::Full
    };
    spec.seed = match rng.gen_range(0..3) {
        0 => rng.gen_range(0..1024),
        1 => MAX_SPEC_INT - rng.gen_range(0..1024u64),
        _ => rng.gen_range(0..MAX_SPEC_INT),
    };
    spec.exec.threads = rng.gen_range(1..=64);
    spec.exec.backend = [
        GemmBackendKind::Naive,
        GemmBackendKind::Blocked,
        GemmBackendKind::Parallel,
        GemmBackendKind::Simd,
        GemmBackendKind::Packed,
    ][rng.gen_range(0..5usize)];
    if rng.gen::<u64>() & 1 == 0 {
        spec.requests = Some(rng.gen_range(1..100_000));
    }
    if rng.gen::<u64>() & 1 == 0 {
        let n = rng.gen_range(1..5usize);
        spec.replicas = Some((0..n).map(|_| rng.gen_range(1..64)).collect());
    }
    if rng.gen::<u64>() & 1 == 0 {
        spec.fault_seed = Some(match rng.gen_range(0..3) {
            0 => rng.gen_range(0..1024),
            1 => MAX_SPEC_INT - rng.gen_range(0..1024u64),
            _ => rng.gen_range(0..MAX_SPEC_INT),
        });
    }
    // Per-mille rates cover both ends of their valid 0..=1000 range.
    if rng.gen::<u64>() & 1 == 0 {
        spec.crash_per_mille = Some(rng.gen_range(0..=1000));
    }
    if rng.gen::<u64>() & 1 == 0 {
        spec.stall_per_mille = Some(rng.gen_range(0..=1000));
    }
    if rng.gen::<u64>() & 1 == 0 {
        spec.straggle_per_mille = Some(rng.gen_range(0..=1000));
    }
    if rng.gen::<u64>() & 1 == 0 {
        spec.hedging = Some(rng.gen::<u64>() & 1 == 0);
    }
    if rng.gen::<u64>() & 1 == 0 {
        // Paths with separators, dots, and spaces must survive the JSON
        // string escaping round trip.
        spec.trace = Some(
            [
                "trace.json",
                "out/trace.json",
                "deep/nested/dir/t.json",
                "with space.json",
            ][rng.gen_range(0..4usize)]
            .to_string(),
        );
    }
    spec
}

proptest! {
    #[test]
    fn run_spec_render_parse_round_trips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = gen_spec(&mut rng);
        prop_assert_eq!(spec.validate(), Ok(()));
        let text = spec.render();
        let back = RunSpec::parse(&text);
        prop_assert!(back.is_ok(), "rendered spec failed to parse: {:?}\n{}", back, text);
        prop_assert_eq!(back.unwrap(), spec, "round trip changed the spec\n{}", text);
    }

    #[test]
    fn render_is_a_fixed_point(seed in any::<u64>()) {
        // parse(render(s)) == s implies render(parse(render(s))) ==
        // render(s); check it directly so a future lossy field is caught
        // even if equality were weakened.
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = gen_spec(&mut rng);
        let once = spec.render();
        let twice = RunSpec::parse(&once).unwrap().render();
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn default_specs_of_every_experiment_round_trip() {
    let registry = ExperimentRegistry::standard();
    let mut names: Vec<String> = registry.iter().map(|e| e.name().to_string()).collect();
    names.push("all".to_string());
    for name in names {
        let spec = registry.default_spec(&name).expect("registered");
        assert_eq!(spec.validate(), Ok(()), "{name} default must be valid");
        let back = RunSpec::parse(&spec.render()).expect("default spec parses");
        assert_eq!(back, spec, "{name} default must round-trip");
    }
}

#[test]
fn validation_rejects_zero_capacity_queue() {
    let zero_capacity = SchedulerConfig {
        batch: BatchPolicy::default(),
        queue_capacity: 0,
    };
    assert_eq!(
        zero_capacity.validate(),
        Err(ConfigError::ZeroQueueCapacity)
    );
    let zero_batch = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 0,
            max_wait_ns: 0,
        },
        queue_capacity: 8,
    };
    assert_eq!(zero_batch.validate(), Err(ConfigError::ZeroBatch));
    let too_small = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 16,
            max_wait_ns: 0,
        },
        queue_capacity: 8,
    };
    assert_eq!(
        too_small.validate(),
        Err(ConfigError::QueueSmallerThanBatch {
            capacity: 8,
            max_batch: 16
        })
    );
}

#[test]
fn validation_rejects_inverted_adaptive_thresholds() {
    let inverted = AdaptivePolicy {
        depth_high: 1,
        depth_low: 8,
        p95_high_ns: 0,
        eval_every_batches: 1,
    };
    assert_eq!(
        inverted.validate(),
        Err(ConfigError::InvertedDepthThresholds { low: 8, high: 1 })
    );
    let no_cadence = AdaptivePolicy {
        eval_every_batches: 0,
        ..AdaptivePolicy::default()
    };
    assert_eq!(no_cadence.validate(), Err(ConfigError::ZeroEvalCadence));
    // The nested errors surface identically through the pool config — the
    // same rejection every scheduler entry point applies.
    let pool = PoolConfig {
        adaptive: inverted,
        ..PoolConfig::default()
    };
    assert_eq!(
        pool.validate(),
        Err(ConfigError::InvertedDepthThresholds { low: 8, high: 1 })
    );
}

/// Bad fault-schedule values are typed [`ConfigError`]s through the same
/// `Validate` trait — and the spec layer rejects them before a generator
/// ever sees them, with the same shape of error the other knobs get.
#[test]
fn validation_rejects_bad_fault_configs() {
    let hot = FaultConfig {
        crash_per_mille: 1001,
        ..FaultConfig::default()
    };
    assert_eq!(
        hot.validate(),
        Err(ConfigError::FaultRateOutOfRange { rate: 1001 })
    );
    let no_horizon = FaultConfig {
        horizon_batches: 0,
        ..FaultConfig::default()
    };
    assert_eq!(no_horizon.validate(), Err(ConfigError::ZeroFaultHorizon));
    let frozen_forever = FaultConfig {
        stall_per_mille: 1,
        stall_ns: 0,
        ..FaultConfig::default()
    };
    assert_eq!(
        frozen_forever.validate(),
        Err(ConfigError::ZeroStallDuration)
    );
    let speedup = FaultConfig {
        straggle_per_mille: 1,
        straggle_factor_x1024: 512,
        ..FaultConfig::default()
    };
    assert_eq!(
        speedup.validate(),
        Err(ConfigError::StraggleFactorBelowUnit { factor_x1024: 512 })
    );
    // The spec layer applies the same bounds as typed spec errors.
    let mut spec = RunSpec::defaults("faults");
    spec.crash_per_mille = Some(1001);
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
    let mut spec = RunSpec::defaults("faults");
    spec.fault_seed = Some(MAX_SPEC_INT + 1);
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
}

#[test]
fn validation_rejects_zero_tile_sizes() {
    let no_rows = ExecConfig {
        tile_rows: 0,
        ..ExecConfig::default()
    };
    assert_eq!(no_rows.validate(), Err(ExecConfigError::ZeroTileRows));
    let no_k = ExecConfig {
        tile_k: 0,
        ..ExecConfig::default()
    };
    assert_eq!(no_k.validate(), Err(ExecConfigError::ZeroTileK));
    let no_threads = ExecConfig {
        threads: 0,
        ..ExecConfig::default()
    };
    assert_eq!(no_threads.validate(), Err(ExecConfigError::ZeroThreads));
}

#[test]
fn spec_validation_rejects_zero_and_oversized_values() {
    let mut spec = RunSpec::defaults("serve");
    spec.requests = Some(0);
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
    let mut spec = RunSpec::defaults("shard");
    spec.replicas = Some(vec![1, 0]);
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
    let mut spec = RunSpec::defaults("fig8");
    spec.exec.threads = 0;
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
    let mut spec = RunSpec::defaults("fig8");
    spec.seed = MAX_SPEC_INT + 1;
    assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
}

#[test]
fn undeclared_params_are_typed_errors_per_experiment() {
    let registry = ExperimentRegistry::standard();
    // Every paper experiment rejects both serving params; serve rejects
    // replicas; shard accepts both.
    for experiment in registry.iter() {
        let accepted = experiment.describe().params;
        let mut with_requests = experiment.default_spec();
        with_requests.requests = Some(64);
        let requests_ok = with_requests.check_params(accepted).is_ok();
        assert_eq!(
            requests_ok,
            accepted.contains(&ParamKey::Requests),
            "{}: requests acceptance must match describe()",
            experiment.name()
        );
        let mut with_replicas = experiment.default_spec();
        with_replicas.replicas = Some(vec![2]);
        let replicas_ok = with_replicas.check_params(accepted).is_ok();
        assert_eq!(
            replicas_ok,
            accepted.contains(&ParamKey::Replicas),
            "{}: replicas acceptance must match describe()",
            experiment.name()
        );
    }
}

/// Golden test: the binary's `--list` output is exactly the registry's
/// generated text — the driver cannot drift from the registry contents.
#[test]
fn repro_list_output_matches_the_registry() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--list")
        .output()
        .expect("repro binary runs");
    assert!(output.status.success(), "--list must exit 0");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let expected = ExperimentRegistry::standard().list_text();
    assert_eq!(
        stdout, expected,
        "--list must be generated from the registry"
    );
    // And every registered experiment appears by name.
    let registry = ExperimentRegistry::standard();
    for experiment in registry.iter() {
        assert!(stdout.contains(experiment.name()));
    }
}

#[test]
fn repro_help_mentions_spec_flags_and_experiments() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--help")
        .output()
        .expect("repro binary runs");
    assert!(output.status.success(), "--help must exit 0");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert_eq!(stdout, ExperimentRegistry::standard().help_text());
    for flag in ["--spec", "--set", "--dump-spec", "--list"] {
        assert!(stdout.contains(flag), "help must document {flag}");
    }
}

#[test]
fn repro_dump_spec_round_trips_through_the_binary() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--dump-spec",
            "--threads",
            "1",
            "--backend",
            "naive",
        ])
        .output()
        .expect("repro binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let spec = RunSpec::parse(&stdout).expect("dumped spec parses");
    assert_eq!(spec.experiment, "serve");
    assert_eq!(spec.exec.threads, 1);
    assert_eq!(spec.requests, Some(256), "serve defaults fill in");
    // Bit-exact fixed point: dumping what was dumped changes nothing.
    assert_eq!(spec.render(), stdout);
}

#[test]
fn repro_rejects_undeclared_params_with_exit_2() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig8", "--requests", "64"])
        .output()
        .expect("repro binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 output");
    assert!(
        stderr.contains("does not accept the 'requests' parameter"),
        "stderr was: {stderr}"
    );
    // Unknown experiments keep the descriptive list in the error.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("fig99")
        .output()
        .expect("repro binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8(output.stderr).expect("utf-8 output");
    assert!(stderr.contains("unknown experiment 'fig99'"));
    assert!(stderr.contains("Known experiments:"));
}

/// The ARCHITECTURE.md experiment-harness table is the registry's generated
/// markdown, verbatim — editing one without the other fails here.
#[test]
fn architecture_doc_table_is_generated_from_the_registry() {
    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../ARCHITECTURE.md");
    let doc = std::fs::read_to_string(doc_path).expect("ARCHITECTURE.md exists");
    let table = ExperimentRegistry::standard().markdown_table();
    assert!(
        doc.contains(&table),
        "ARCHITECTURE.md experiment table is stale; regenerate it with \
         ExperimentRegistry::markdown_table():\n{table}"
    );
}

#[test]
fn every_committed_example_spec_parses_and_is_accepted() {
    let registry = ExperimentRegistry::standard();
    let specs_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut found = 0;
    for entry in std::fs::read_dir(&specs_dir).expect("examples/specs/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("spec file reads");
        let spec = RunSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert_eq!(spec.validate(), Ok(()), "{} must be valid", path.display());
        assert!(
            registry.contains(&spec.experiment),
            "{} names unknown experiment '{}'",
            path.display(),
            spec.experiment
        );
        let accepted = registry.accepted_params(&spec.experiment).expect("known");
        assert_eq!(
            spec.check_params(accepted),
            Ok(()),
            "{} sets undeclared params",
            path.display()
        );
    }
    assert!(
        found >= 5,
        "expected committed example specs, found {found}"
    );
}
