//! Property tests for `bench::json` and the summary writers built on it.
//!
//! Two invariants the tracked `BENCH_*.json` files depend on:
//!
//! * **Round trip**: `parse(render(v)) == v` for arbitrary Json values —
//!   escapes, control characters, unicode, deep nesting, negative/fractional
//!   /huge numbers. (Non-finite numbers are excluded: JSON cannot represent
//!   them and the writer renders them as `null` by design.)
//! * **Merge idempotence**: writing the same summary into a file twice
//!   leaves exactly the state of writing it once — merge-by-name replaces,
//!   never duplicates.

use proptest::prelude::*;

use nbsmt_bench::json::Json;
use nbsmt_bench::{BenchRecord, BenchSummary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically grows an arbitrary Json value from a seed, biased
/// toward the nasty cases: escape-heavy strings, numbers at formatting
/// boundaries, nested containers.
fn gen_json(rng: &mut StdRng, depth: usize) -> Json {
    let variant = if depth == 0 {
        rng.gen_range(0..4) // scalars only at the leaves
    } else {
        rng.gen_range(0..6)
    };
    match variant {
        0 => Json::Null,
        1 => Json::Bool(rng.gen::<u64>() & 1 == 1),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0..4usize);
            Json::Arr((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn gen_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..6) {
        0 => 0.0,
        1 => rng.gen_range(-1000i64..1000) as f64,
        // The integral-rendering boundary (~9e15) from both sides.
        2 => 9.0e15 + rng.gen_range(-2.0..2.0) * 1.0e15,
        3 => rng.gen_range(-1.0..1.0),
        4 => rng.gen_range(-1.0e-300..1.0e-300), // near-subnormal
        _ => loop {
            // Arbitrary bit patterns, re-rolled until finite (JSON has no
            // NaN/Inf representation; the writer maps them to null).
            let v = f64::from_bits(rng.gen::<u64>());
            if v.is_finite() {
                break v;
            }
        },
    }
}

fn gen_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6) {
            0 => '"',
            1 => '\\',
            2 => ['\n', '\r', '\t', '\u{1}', '\u{1f}'][rng.gen_range(0..5usize)],
            3 => ['é', '✓', 'λ', '中', '𝄞'][rng.gen_range(0..5usize)],
            _ => rng.gen_range(b' '..b'~') as char,
        })
        .collect()
}

proptest! {
    #[test]
    fn render_parse_round_trips_arbitrary_values(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_json(&mut rng, 3);
        let text = value.render();
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "rendered text failed to parse: {:?}\n{}", back, text);
        prop_assert_eq!(back.unwrap(), value, "round trip changed the value\n{}", text);
    }

    #[test]
    fn rendering_is_stable_under_reparse(seed in any::<u64>()) {
        // render(parse(render(v))) == render(v): the canonical form is a
        // fixed point, so rewriting a tracked summary never churns the diff.
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen_json(&mut rng, 3);
        let once = value.render();
        let twice = Json::parse(&once).expect("canonical form parses").render();
        prop_assert_eq!(&twice, &once);
    }
}

fn record(name: &str, rng: &mut StdRng) -> BenchRecord {
    BenchRecord {
        name: name.to_string(),
        // One decimal, matching the writer's mean_ns rounding, so a file
        // round trip preserves the record exactly.
        mean_ns: (rng.gen_range(0.0..1.0e6f64) * 10.0).round() / 10.0,
        iters: rng.gen_range(1..100u64),
        threads: rng.gen_range(1..64usize),
        backend: ["naive", "blocked", "parallel"][rng.gen_range(0..3usize)].to_string(),
        mac_ops: rng.gen_range(0..1u64 << 40),
    }
}

proptest! {
    #[test]
    fn summary_merge_by_name_is_idempotent(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Draw names from a small pool so same-name replacement is
        // exercised, not just appends.
        let names = ["alpha", "beta", "gamma", "delta"];
        let mut summary = BenchSummary::new();
        for _ in 0..rng.gen_range(1..8usize) {
            let name = names[rng.gen_range(0..names.len())];
            summary.records.push(record(name, &mut rng));
        }

        let path = std::env::temp_dir().join(format!(
            "nbsmt_json_props_{}_{seed:x}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        summary.write(&path).expect("first write succeeds");
        let once = std::fs::read_to_string(&path).expect("file exists");
        summary.write(&path).expect("second write succeeds");
        let twice = std::fs::read_to_string(&path).expect("file exists");
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(&twice, &once, "re-writing the same summary must be a no-op");

        // And the merged state is last-writer-wins per name, order-stable:
        // one record per distinct name, in first-appearance order.
        let merged = BenchSummary::parse(&once).expect("written file parses");
        let mut expected_names: Vec<&str> = Vec::new();
        for r in &summary.records {
            if !expected_names.contains(&r.name.as_str()) {
                expected_names.push(r.name.as_str());
            }
        }
        let got_names: Vec<&str> = merged.records.iter().map(|r| r.name.as_str()).collect();
        prop_assert_eq!(got_names, expected_names);
        for want in expected_names {
            let last = summary
                .records
                .iter()
                .rev()
                .find(|r| r.name == want)
                .expect("name came from the summary");
            let got = merged
                .records
                .iter()
                .find(|r| r.name == want)
                .expect("merged file keeps every name");
            prop_assert_eq!(got, last, "merge must keep the last record per name");
        }
    }
}
