//! Declarative run specification for the experiment harness.
//!
//! A [`RunSpec`] is the single value that describes one `repro` run: which
//! experiment, at what scale and seed, on which host-execution settings, and
//! any per-experiment parameters (request-trace length, replica counts). It
//! parses from and renders to JSON through [`crate::json`] — the same
//! hand-rolled writer the benchmark summaries use, since the offline serde
//! shim has no serializer — so a run is reproducible from a committed spec
//! file instead of a growing CLI flag matrix.
//!
//! Round-trip contract: `RunSpec::parse(&spec.render()) == spec`, bit-exact,
//! for every valid spec. Rendering always emits `experiment`, `scale`,
//! `seed`, and `exec`; the optional per-experiment parameters appear iff
//! they are set. All integers must stay within JSON's exactly-representable
//! range (2^53 − 1), which [`RunSpec::validate`] enforces.
//!
//! Validation is split in two:
//!
//! * [`RunSpec::validate`] (the workspace-wide [`Validate`] trait) checks
//!   *values* — a zero thread count, an empty replica list.
//! * [`RunSpec::check_params`] checks the spec *against an experiment's
//!   declared parameters* — setting `requests` on `fig8` is a typed
//!   [`SpecError::KeyNotAccepted`], never a silently dropped flag.

use nbsmt_tensor::exec::GemmBackendKind;
use nbsmt_tensor::validate::Validate;

use crate::json::{Json, JsonError};
use crate::scale::{ExecSettings, Scale};

/// The largest integer JSON (backed by f64) represents exactly: 2^53 − 1.
/// Seeds, request counts, and replica counts beyond it would not round-trip
/// through a spec file, so validation rejects them.
pub const MAX_SPEC_INT: u64 = (1 << 53) - 1;

/// A per-experiment parameter an [`crate::experiments::registry::Experiment`]
/// may declare in its [`crate::experiments::registry::ExperimentInfo`].
///
/// The universal keys (`scale`, `seed`, `threads`, `backend`) are accepted by
/// every experiment and are not listed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKey {
    /// `requests` — length of the generated arrival trace.
    Requests,
    /// `replicas` — replica counts a sharded sweep runs at.
    Replicas,
    /// `fault_seed` — seed of the generated fault schedule.
    FaultSeed,
    /// `crash_per_mille` — per-mille crash rate of the generated schedule.
    CrashPerMille,
    /// `stall_per_mille` — per-mille stall rate of the generated schedule.
    StallPerMille,
    /// `straggle_per_mille` — per-mille straggle rate of the generated
    /// schedule.
    StragglePerMille,
    /// `hedging` — whether the countermeasure client hedges stragglers.
    Hedging,
    /// `trace.path` — file the exported Chrome-trace JSON is written to.
    Trace,
    /// `arrival` — traffic-model filter for the scale sweep (`poisson`,
    /// `mmpp`, `diurnal`, or `all`).
    Arrival,
    /// `size_alpha_x1024` — bounded-Pareto shape of the request-size model
    /// (x1024 fixed point).
    SizeAlpha,
    /// `size_min_x1024` — smallest request size (x1024; 1024 = 1.0× the
    /// model's per-request MACs).
    SizeMin,
    /// `size_max_x1024` — largest request size (x1024).
    SizeMax,
}

impl ParamKey {
    /// The spec-file / CLI key.
    pub fn name(self) -> &'static str {
        match self {
            ParamKey::Requests => "requests",
            ParamKey::Replicas => "replicas",
            ParamKey::FaultSeed => "fault_seed",
            ParamKey::CrashPerMille => "crash_per_mille",
            ParamKey::StallPerMille => "stall_per_mille",
            ParamKey::StragglePerMille => "straggle_per_mille",
            ParamKey::Hedging => "hedging",
            ParamKey::Trace => "trace.path",
            ParamKey::Arrival => "arrival",
            ParamKey::SizeAlpha => "size_alpha_x1024",
            ParamKey::SizeMin => "size_min_x1024",
            ParamKey::SizeMax => "size_max_x1024",
        }
    }
}

/// One fully-specified experiment run. See the module docs for the JSON
/// round-trip and validation contracts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Experiment id (a registry name, e.g. `fig8`, `serve`, `all`).
    pub experiment: String,
    /// Sample-count scale.
    pub scale: Scale,
    /// Master seed for training, calibration, and load generation.
    pub seed: u64,
    /// Host-execution settings (worker threads + GEMM backend). By the
    /// execution layer's determinism contract these change wall-clock time
    /// only, never the reproduced numbers.
    pub exec: ExecSettings,
    /// Arrival-trace length for the serving sweeps ([`ParamKey::Requests`]).
    pub requests: Option<usize>,
    /// Replica counts for the sharded sweep ([`ParamKey::Replicas`]).
    pub replicas: Option<Vec<usize>>,
    /// Seed of the generated fault schedule ([`ParamKey::FaultSeed`]).
    pub fault_seed: Option<u64>,
    /// Per-mille crash rate of the generated fault schedule
    /// ([`ParamKey::CrashPerMille`], ≤ 1000).
    pub crash_per_mille: Option<u64>,
    /// Per-mille stall rate of the generated fault schedule
    /// ([`ParamKey::StallPerMille`], ≤ 1000).
    pub stall_per_mille: Option<u64>,
    /// Per-mille straggle rate of the generated fault schedule
    /// ([`ParamKey::StragglePerMille`], ≤ 1000).
    pub straggle_per_mille: Option<u64>,
    /// Whether the countermeasure client hedges stragglers
    /// ([`ParamKey::Hedging`]).
    pub hedging: Option<bool>,
    /// File the exported Chrome-trace JSON is written to
    /// ([`ParamKey::Trace`]; rendered as a nested `{"trace": {"path": …}}`
    /// object, mirroring `exec`).
    pub trace: Option<String>,
    /// Traffic-model filter for the scale sweep ([`ParamKey::Arrival`]:
    /// `poisson`, `mmpp`, `diurnal`, or `all`).
    pub arrival: Option<String>,
    /// Bounded-Pareto request-size shape, x1024 ([`ParamKey::SizeAlpha`]).
    pub size_alpha_x1024: Option<u64>,
    /// Smallest request size, x1024 ([`ParamKey::SizeMin`]).
    pub size_min_x1024: Option<u64>,
    /// Largest request size, x1024 ([`ParamKey::SizeMax`]).
    pub size_max_x1024: Option<u64>,
}

impl RunSpec {
    /// The baseline spec every experiment starts from: quick scale, the
    /// repo-wide seed 2024, the default parallel execution settings, no
    /// per-experiment parameters.
    pub fn defaults(experiment: &str) -> RunSpec {
        RunSpec {
            experiment: experiment.to_string(),
            scale: Scale::Quick,
            seed: 2024,
            exec: ExecSettings::parallel(),
            requests: None,
            replicas: None,
            fault_seed: None,
            crash_per_mille: None,
            stall_per_mille: None,
            straggle_per_mille: None,
            hedging: None,
            trace: None,
            arrival: None,
            size_alpha_x1024: None,
            size_min_x1024: None,
            size_max_x1024: None,
        }
    }

    /// Renders the spec as a JSON document (ends with a newline, like every
    /// file [`crate::json`] writes).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// The spec as a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("experiment".to_string(), Json::str(&self.experiment)),
            ("scale".to_string(), Json::str(self.scale.name())),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "exec".to_string(),
                Json::obj([
                    ("threads", Json::Num(self.exec.threads as f64)),
                    ("backend", Json::str(self.exec.backend.name())),
                ]),
            ),
        ];
        if let Some(requests) = self.requests {
            fields.push(("requests".to_string(), Json::Num(requests as f64)));
        }
        if let Some(replicas) = &self.replicas {
            fields.push((
                "replicas".to_string(),
                Json::Arr(replicas.iter().map(|&r| Json::Num(r as f64)).collect()),
            ));
        }
        if let Some(fault_seed) = self.fault_seed {
            fields.push(("fault_seed".to_string(), Json::Num(fault_seed as f64)));
        }
        if let Some(rate) = self.crash_per_mille {
            fields.push(("crash_per_mille".to_string(), Json::Num(rate as f64)));
        }
        if let Some(rate) = self.stall_per_mille {
            fields.push(("stall_per_mille".to_string(), Json::Num(rate as f64)));
        }
        if let Some(rate) = self.straggle_per_mille {
            fields.push(("straggle_per_mille".to_string(), Json::Num(rate as f64)));
        }
        if let Some(hedging) = self.hedging {
            fields.push(("hedging".to_string(), Json::Bool(hedging)));
        }
        if let Some(path) = &self.trace {
            fields.push(("trace".to_string(), Json::obj([("path", Json::str(path))])));
        }
        if let Some(arrival) = &self.arrival {
            fields.push(("arrival".to_string(), Json::str(arrival)));
        }
        if let Some(alpha) = self.size_alpha_x1024 {
            fields.push(("size_alpha_x1024".to_string(), Json::Num(alpha as f64)));
        }
        if let Some(min) = self.size_min_x1024 {
            fields.push(("size_min_x1024".to_string(), Json::Num(min as f64)));
        }
        if let Some(max) = self.size_max_x1024 {
            fields.push(("size_max_x1024".to_string(), Json::Num(max as f64)));
        }
        Json::Obj(fields)
    }

    /// Parses a spec document.
    ///
    /// `experiment` is required; every other field falls back to
    /// [`RunSpec::defaults`] when absent so hand-written files stay short.
    /// Unknown fields — top-level or inside `exec` — are typed errors, not
    /// silently ignored: a misspelled key must never quietly revert a run to
    /// its defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first problem found.
    pub fn parse(text: &str) -> Result<RunSpec, SpecError> {
        Self::parse_onto(text, None)
    }

    /// [`Self::parse`], but absent fields fall back to `defaults` instead of
    /// the global [`RunSpec::defaults`] — the overlay the `repro` driver
    /// uses so a minimal file (`{"experiment": "shard"}`) inherits the
    /// *experiment's* own defaults (e.g. `replicas: [1,2,4]`), field by
    /// field, whether or not the file mentions them.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first problem found.
    pub fn parse_with_defaults(text: &str, defaults: RunSpec) -> Result<RunSpec, SpecError> {
        Self::parse_onto(text, Some(defaults))
    }

    fn parse_onto(text: &str, base: Option<RunSpec>) -> Result<RunSpec, SpecError> {
        let doc = Json::parse(text)?;
        let Json::Obj(fields) = &doc else {
            return Err(SpecError::NotAnObject);
        };
        let experiment = doc
            .get("experiment")
            .ok_or(SpecError::Missing("experiment"))?
            .as_str()
            .ok_or_else(|| SpecError::bad("experiment", "expected a string"))?
            .to_string();
        let mut spec = match base {
            Some(mut base) => {
                base.experiment = experiment;
                base
            }
            None => RunSpec::defaults(&experiment),
        };
        for (key, value) in fields {
            match key.as_str() {
                "experiment" => {}
                "scale" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| SpecError::bad("scale", "expected a string"))?;
                    spec.scale = Scale::parse(name).ok_or_else(|| {
                        SpecError::bad("scale", format!("'{name}' is not one of quick, full"))
                    })?;
                }
                "seed" => spec.seed = parse_int(value, "seed")?,
                "exec" => {
                    let Json::Obj(exec_fields) = value else {
                        return Err(SpecError::bad("exec", "expected an object"));
                    };
                    for (exec_key, exec_value) in exec_fields {
                        match exec_key.as_str() {
                            "threads" => {
                                spec.exec.threads = parse_int(exec_value, "exec.threads")? as usize;
                            }
                            "backend" => {
                                let name = exec_value.as_str().ok_or_else(|| {
                                    SpecError::bad("exec.backend", "expected a string")
                                })?;
                                spec.exec.backend =
                                    GemmBackendKind::parse(name).ok_or_else(|| {
                                        SpecError::bad(
                                            "exec.backend",
                                            format!(
                                                "'{name}' is not one of naive, blocked, parallel, simd, packed"
                                            ),
                                        )
                                    })?;
                            }
                            other => return Err(SpecError::UnknownField(format!("exec.{other}"))),
                        }
                    }
                }
                "requests" => spec.requests = Some(parse_int(value, "requests")? as usize),
                "fault_seed" => spec.fault_seed = Some(parse_int(value, "fault_seed")?),
                "crash_per_mille" => {
                    spec.crash_per_mille = Some(parse_int(value, "crash_per_mille")?);
                }
                "stall_per_mille" => {
                    spec.stall_per_mille = Some(parse_int(value, "stall_per_mille")?);
                }
                "straggle_per_mille" => {
                    spec.straggle_per_mille = Some(parse_int(value, "straggle_per_mille")?);
                }
                "hedging" => {
                    spec.hedging = Some(
                        value
                            .as_bool()
                            .ok_or_else(|| SpecError::bad("hedging", "expected true or false"))?,
                    );
                }
                "trace" => {
                    let Json::Obj(trace_fields) = value else {
                        return Err(SpecError::bad("trace", "expected an object"));
                    };
                    for (trace_key, trace_value) in trace_fields {
                        match trace_key.as_str() {
                            "path" => {
                                let path = trace_value.as_str().ok_or_else(|| {
                                    SpecError::bad("trace.path", "expected a string")
                                })?;
                                spec.trace = Some(path.to_string());
                            }
                            other => return Err(SpecError::UnknownField(format!("trace.{other}"))),
                        }
                    }
                }
                "arrival" => {
                    let name = value
                        .as_str()
                        .ok_or_else(|| SpecError::bad("arrival", "expected a string"))?;
                    spec.arrival = Some(name.to_string());
                }
                "size_alpha_x1024" => {
                    spec.size_alpha_x1024 = Some(parse_int(value, "size_alpha_x1024")?);
                }
                "size_min_x1024" => {
                    spec.size_min_x1024 = Some(parse_int(value, "size_min_x1024")?);
                }
                "size_max_x1024" => {
                    spec.size_max_x1024 = Some(parse_int(value, "size_max_x1024")?);
                }
                "replicas" => {
                    let items = value
                        .as_arr()
                        .ok_or_else(|| SpecError::bad("replicas", "expected an array"))?;
                    let replicas = items
                        .iter()
                        .map(|item| parse_int(item, "replicas").map(|n| n as usize))
                        .collect::<Result<Vec<_>, _>>()?;
                    spec.replicas = Some(replicas);
                }
                other => return Err(SpecError::UnknownField(other.to_string())),
            }
        }
        Ok(spec)
    }

    /// Applies one `--set key=value` override (also the target of the legacy
    /// `--threads` / `--backend` / `--requests` / `--replicas` / `--full`
    /// flags, which are shorthands for these keys).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownKey`] for a key that is not a spec field, or a
    /// [`SpecError::Bad`] describing an unparsable value.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        match key {
            "scale" => {
                self.scale = Scale::parse(value).ok_or_else(|| {
                    SpecError::bad("scale", format!("'{value}' is not one of quick, full"))
                })?;
            }
            "seed" => {
                self.seed = value
                    .parse()
                    .map_err(|_| SpecError::bad("seed", format!("'{value}' is not a seed")))?;
            }
            "threads" => {
                self.exec.threads = value.parse().map_err(|_| {
                    SpecError::bad("threads", format!("'{value}' is not a thread count"))
                })?;
            }
            "backend" => {
                self.exec.backend = GemmBackendKind::parse(value).ok_or_else(|| {
                    SpecError::bad(
                        "backend",
                        format!("'{value}' is not one of naive, blocked, parallel, simd, packed"),
                    )
                })?;
            }
            "requests" => {
                self.requests = Some(value.parse().map_err(|_| {
                    SpecError::bad("requests", format!("'{value}' is not a request count"))
                })?);
            }
            "replicas" => {
                let replicas = value
                    .split(',')
                    .map(|part| {
                        part.trim().parse::<usize>().map_err(|_| {
                            SpecError::bad("replicas", format!("'{part}' is not a replica count"))
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                self.replicas = Some(replicas);
            }
            "fault_seed" => {
                self.fault_seed = Some(value.parse().map_err(|_| {
                    SpecError::bad("fault_seed", format!("'{value}' is not a seed"))
                })?);
            }
            "crash_per_mille" => {
                self.crash_per_mille = Some(value.parse().map_err(|_| {
                    SpecError::bad("crash_per_mille", format!("'{value}' is not a rate"))
                })?);
            }
            "stall_per_mille" => {
                self.stall_per_mille = Some(value.parse().map_err(|_| {
                    SpecError::bad("stall_per_mille", format!("'{value}' is not a rate"))
                })?);
            }
            "straggle_per_mille" => {
                self.straggle_per_mille = Some(value.parse().map_err(|_| {
                    SpecError::bad("straggle_per_mille", format!("'{value}' is not a rate"))
                })?);
            }
            "hedging" => {
                self.hedging = Some(match value {
                    "true" => true,
                    "false" => false,
                    _ => {
                        return Err(SpecError::bad(
                            "hedging",
                            format!("'{value}' is not true or false"),
                        ))
                    }
                });
            }
            "trace.path" => {
                self.trace = Some(value.to_string());
            }
            "arrival" => {
                self.arrival = Some(value.to_string());
            }
            "size_alpha_x1024" => {
                self.size_alpha_x1024 = Some(value.parse().map_err(|_| {
                    SpecError::bad("size_alpha_x1024", format!("'{value}' is not a shape"))
                })?);
            }
            "size_min_x1024" => {
                self.size_min_x1024 = Some(value.parse().map_err(|_| {
                    SpecError::bad("size_min_x1024", format!("'{value}' is not a size"))
                })?);
            }
            "size_max_x1024" => {
                self.size_max_x1024 = Some(value.parse().map_err(|_| {
                    SpecError::bad("size_max_x1024", format!("'{value}' is not a size"))
                })?);
            }
            other => return Err(SpecError::UnknownKey(other.to_string())),
        }
        Ok(())
    }

    /// The optional per-experiment parameters this spec sets. Used by the
    /// registry to reject keys an experiment does not declare.
    pub fn params_set(&self) -> Vec<ParamKey> {
        let mut keys = Vec::new();
        if self.requests.is_some() {
            keys.push(ParamKey::Requests);
        }
        if self.replicas.is_some() {
            keys.push(ParamKey::Replicas);
        }
        if self.fault_seed.is_some() {
            keys.push(ParamKey::FaultSeed);
        }
        if self.crash_per_mille.is_some() {
            keys.push(ParamKey::CrashPerMille);
        }
        if self.stall_per_mille.is_some() {
            keys.push(ParamKey::StallPerMille);
        }
        if self.straggle_per_mille.is_some() {
            keys.push(ParamKey::StragglePerMille);
        }
        if self.hedging.is_some() {
            keys.push(ParamKey::Hedging);
        }
        if self.trace.is_some() {
            keys.push(ParamKey::Trace);
        }
        if self.arrival.is_some() {
            keys.push(ParamKey::Arrival);
        }
        if self.size_alpha_x1024.is_some() {
            keys.push(ParamKey::SizeAlpha);
        }
        if self.size_min_x1024.is_some() {
            keys.push(ParamKey::SizeMin);
        }
        if self.size_max_x1024.is_some() {
            keys.push(ParamKey::SizeMax);
        }
        keys
    }

    /// Checks this spec against an experiment's declared parameter keys:
    /// every optional parameter the spec sets must be accepted.
    ///
    /// # Errors
    ///
    /// [`SpecError::KeyNotAccepted`] naming the first undeclared key.
    pub fn check_params(&self, accepted: &[ParamKey]) -> Result<(), SpecError> {
        for key in self.params_set() {
            if !accepted.contains(&key) {
                return Err(SpecError::KeyNotAccepted {
                    experiment: self.experiment.clone(),
                    key: key.name(),
                });
            }
        }
        Ok(())
    }
}

fn parse_int(value: &Json, field: &str) -> Result<u64, SpecError> {
    let v = value
        .as_f64()
        .ok_or_else(|| SpecError::bad(field, "expected a number"))?;
    if v < 0.0 || v.fract() != 0.0 || v > MAX_SPEC_INT as f64 {
        return Err(SpecError::bad(
            field,
            format!("{v} is not a non-negative integer ≤ 2^53−1"),
        ));
    }
    Ok(v as u64)
}

impl Validate for RunSpec {
    type Error = SpecError;

    fn validate(&self) -> Result<(), SpecError> {
        if self.experiment.is_empty() {
            return Err(SpecError::Missing("experiment"));
        }
        if self.seed > MAX_SPEC_INT {
            return Err(SpecError::bad(
                "seed",
                "must be ≤ 2^53−1 to round-trip through a spec file",
            ));
        }
        if self.exec.threads == 0 {
            return Err(SpecError::bad("threads", "must be at least 1"));
        }
        if self.exec.threads as u64 > MAX_SPEC_INT {
            return Err(SpecError::bad("threads", "must be ≤ 2^53−1"));
        }
        if let Some(requests) = self.requests {
            if requests == 0 {
                return Err(SpecError::bad("requests", "must be at least 1"));
            }
            if requests as u64 > MAX_SPEC_INT {
                return Err(SpecError::bad("requests", "must be ≤ 2^53−1"));
            }
        }
        if let Some(replicas) = &self.replicas {
            if replicas.is_empty() {
                return Err(SpecError::bad("replicas", "needs at least one count"));
            }
            if let Some(&bad) = replicas.iter().find(|&&r| r == 0) {
                return Err(SpecError::bad(
                    "replicas",
                    format!("{bad} is not a replica count (must be at least 1)"),
                ));
            }
            if replicas.iter().any(|&r| r as u64 > MAX_SPEC_INT) {
                return Err(SpecError::bad("replicas", "counts must be ≤ 2^53−1"));
            }
        }
        if self.fault_seed.is_some_and(|seed| seed > MAX_SPEC_INT) {
            return Err(SpecError::bad(
                "fault_seed",
                "must be ≤ 2^53−1 to round-trip through a spec file",
            ));
        }
        // The same bound the serving layer's FaultConfig validation
        // enforces — reject at the spec boundary too, with the field named.
        for (field, rate) in [
            ("crash_per_mille", self.crash_per_mille),
            ("stall_per_mille", self.stall_per_mille),
            ("straggle_per_mille", self.straggle_per_mille),
        ] {
            if rate.is_some_and(|rate| rate > 1000) {
                return Err(SpecError::bad(
                    field,
                    "per-mille rates must be at most 1000",
                ));
            }
        }
        if self.trace.as_deref() == Some("") {
            return Err(SpecError::bad("trace.path", "must not be empty"));
        }
        if let Some(arrival) = self.arrival.as_deref() {
            if !matches!(arrival, "poisson" | "mmpp" | "diurnal" | "all") {
                return Err(SpecError::bad(
                    "arrival",
                    format!("'{arrival}' is not one of poisson, mmpp, diurnal, all"),
                ));
            }
        }
        for (field, value) in [
            ("size_alpha_x1024", self.size_alpha_x1024),
            ("size_min_x1024", self.size_min_x1024),
            ("size_max_x1024", self.size_max_x1024),
        ] {
            if value == Some(0) {
                return Err(SpecError::bad(field, "must be at least 1"));
            }
            if value.is_some_and(|v| v > MAX_SPEC_INT) {
                return Err(SpecError::bad(field, "must be ≤ 2^53−1"));
            }
        }
        if let (Some(min), Some(max)) = (self.size_min_x1024, self.size_max_x1024) {
            if max < min {
                return Err(SpecError::bad(
                    "size_max_x1024",
                    format!("{max} is below size_min_x1024 ({min})"),
                ));
            }
        }
        Ok(())
    }
}

/// Why a run spec could not be parsed, applied, or validated.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not syntactically valid JSON.
    Json(JsonError),
    /// The document's top level is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    Missing(&'static str),
    /// A field holds an unusable value.
    Bad {
        /// The offending field (dotted path for nested fields).
        field: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The document contains a field that is not part of the spec schema.
    UnknownField(String),
    /// A `--set` key that is not a spec field.
    UnknownKey(String),
    /// The spec sets a parameter the target experiment does not declare
    /// (e.g. `requests` on `fig8`).
    KeyNotAccepted {
        /// The experiment the spec addresses.
        experiment: String,
        /// The undeclared parameter key.
        key: &'static str,
    },
    /// The spec file names one experiment but another was requested on the
    /// command line.
    ExperimentMismatch {
        /// The experiment named in the spec file.
        spec: String,
        /// The experiment requested positionally.
        requested: String,
    },
}

impl SpecError {
    fn bad(field: impl Into<String>, reason: impl Into<String>) -> SpecError {
        SpecError::Bad {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "spec is not valid JSON: {e}"),
            SpecError::NotAnObject => write!(f, "spec must be a JSON object"),
            SpecError::Missing(field) => write!(f, "spec is missing the '{field}' field"),
            SpecError::Bad { field, reason } => write!(f, "spec field '{field}': {reason}"),
            SpecError::UnknownField(field) => {
                write!(f, "spec contains an unknown field '{field}'")
            }
            SpecError::UnknownKey(key) => {
                write!(
                    f,
                    "unknown spec key '{key}' (known keys: scale, seed, threads, backend, \
                     requests, replicas, fault_seed, crash_per_mille, stall_per_mille, \
                     straggle_per_mille, hedging, trace.path, arrival, size_alpha_x1024, \
                     size_min_x1024, size_max_x1024)"
                )
            }
            SpecError::KeyNotAccepted { experiment, key } => write!(
                f,
                "experiment '{experiment}' does not accept the '{key}' parameter"
            ),
            SpecError::ExperimentMismatch { spec, requested } => write!(
                f,
                "spec file is for experiment '{spec}' but '{requested}' was requested"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_render_and_round_trip() {
        let spec = RunSpec::defaults("fig8");
        let text = spec.render();
        assert!(text.contains("\"experiment\": \"fig8\""));
        assert!(text.contains("\"scale\": \"quick\""));
        assert!(!text.contains("requests"), "unset params are omitted");
        let back = RunSpec::parse(&text).expect("rendered spec parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn optional_params_round_trip_when_set() {
        let mut spec = RunSpec::defaults("shard");
        spec.requests = Some(64);
        spec.replicas = Some(vec![1, 2, 4]);
        spec.exec = ExecSettings::sequential();
        let back = RunSpec::parse(&spec.render()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(
            back.params_set(),
            vec![ParamKey::Requests, ParamKey::Replicas]
        );
    }

    #[test]
    fn short_files_fall_back_to_defaults() {
        let spec = RunSpec::parse(r#"{"experiment": "table3"}"#).expect("parses");
        assert_eq!(spec.scale, Scale::Quick);
        assert_eq!(spec.seed, 2024);
        assert_eq!(spec.requests, None);
        // experiment is the one required field.
        assert_eq!(
            RunSpec::parse(r#"{"scale": "full"}"#),
            Err(SpecError::Missing("experiment"))
        );
    }

    #[test]
    fn parse_with_defaults_inherits_unmentioned_fields() {
        let mut defaults = RunSpec::defaults("shard");
        defaults.scale = Scale::Full;
        defaults.requests = Some(256);
        defaults.replicas = Some(vec![1, 2, 4]);
        let spec =
            RunSpec::parse_with_defaults(r#"{"experiment": "shard", "requests": 64}"#, defaults)
                .expect("parses");
        // Fields the file sets win; everything else comes from the given
        // defaults, not the global ones.
        assert_eq!(spec.requests, Some(64));
        assert_eq!(spec.replicas, Some(vec![1, 2, 4]));
        assert_eq!(spec.scale, Scale::Full);
        assert_eq!(spec.experiment, "shard");
    }

    #[test]
    fn unknown_fields_are_typed_errors() {
        assert_eq!(
            RunSpec::parse(r#"{"experiment": "fig8", "requsts": 64}"#),
            Err(SpecError::UnknownField("requsts".to_string()))
        );
        assert_eq!(
            RunSpec::parse(r#"{"experiment": "fig8", "exec": {"treads": 1}}"#),
            Err(SpecError::UnknownField("exec.treads".to_string()))
        );
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "fig8", "scale": "medium"}"#),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "fig8", "seed": -3}"#),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "fig8", "seed": 2.5}"#),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "serve", "requests": [1]}"#),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            RunSpec::parse("not json"),
            Err(SpecError::Json(_))
        ));
        assert_eq!(RunSpec::parse("[1, 2]"), Err(SpecError::NotAnObject));
    }

    #[test]
    fn set_applies_overrides_and_rejects_unknown_keys() {
        let mut spec = RunSpec::defaults("serve");
        spec.set("scale", "full").unwrap();
        spec.set("seed", "7").unwrap();
        spec.set("threads", "2").unwrap();
        spec.set("backend", "blocked").unwrap();
        spec.set("requests", "128").unwrap();
        spec.set("replicas", "1, 2,4").unwrap();
        assert_eq!(spec.scale, Scale::Full);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.exec.threads, 2);
        assert_eq!(spec.exec.backend, GemmBackendKind::Blocked);
        assert_eq!(spec.requests, Some(128));
        assert_eq!(spec.replicas, Some(vec![1, 2, 4]));
        assert_eq!(
            spec.set("reqests", "1"),
            Err(SpecError::UnknownKey("reqests".to_string()))
        );
        assert!(matches!(
            spec.set("requests", "many"),
            Err(SpecError::Bad { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut spec = RunSpec::defaults("serve");
        assert_eq!(spec.validate(), Ok(()));
        spec.exec.threads = 0;
        assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
        let mut spec = RunSpec::defaults("serve");
        spec.requests = Some(0);
        assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
        let mut spec = RunSpec::defaults("shard");
        spec.replicas = Some(vec![]);
        assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
        let mut spec = RunSpec::defaults("shard");
        spec.replicas = Some(vec![2, 0]);
        assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
        let mut spec = RunSpec::defaults("fig8");
        spec.seed = MAX_SPEC_INT + 1;
        assert!(matches!(spec.validate(), Err(SpecError::Bad { .. })));
    }

    #[test]
    fn check_params_rejects_undeclared_keys() {
        let mut spec = RunSpec::defaults("fig8");
        assert_eq!(spec.check_params(&[]), Ok(()));
        spec.requests = Some(64);
        assert_eq!(
            spec.check_params(&[]),
            Err(SpecError::KeyNotAccepted {
                experiment: "fig8".to_string(),
                key: "requests",
            })
        );
        assert_eq!(spec.check_params(&[ParamKey::Requests]), Ok(()));
    }

    #[test]
    fn fault_params_round_trip_and_validate() {
        let mut spec = RunSpec::defaults("faults");
        spec.fault_seed = Some(7);
        spec.crash_per_mille = Some(40);
        spec.stall_per_mille = Some(80);
        spec.straggle_per_mille = Some(120);
        spec.hedging = Some(true);
        assert_eq!(spec.validate(), Ok(()));
        let back = RunSpec::parse(&spec.render()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(
            back.params_set(),
            vec![
                ParamKey::FaultSeed,
                ParamKey::CrashPerMille,
                ParamKey::StallPerMille,
                ParamKey::StragglePerMille,
                ParamKey::Hedging,
            ]
        );
        // --set accepts the same keys…
        let mut from_set = RunSpec::defaults("faults");
        from_set.set("fault_seed", "7").unwrap();
        from_set.set("crash_per_mille", "40").unwrap();
        from_set.set("stall_per_mille", "80").unwrap();
        from_set.set("straggle_per_mille", "120").unwrap();
        from_set.set("hedging", "true").unwrap();
        assert_eq!(from_set, spec);
        // …and rejects malformed values with typed errors.
        assert!(matches!(
            from_set.set("hedging", "yes"),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            from_set.set("crash_per_mille", "often"),
            Err(SpecError::Bad { .. })
        ));
        // Out-of-range rates are rejected at validation, mirroring the
        // serving layer's FaultConfig bound.
        let mut bad = RunSpec::defaults("faults");
        bad.stall_per_mille = Some(1001);
        assert!(matches!(bad.validate(), Err(SpecError::Bad { .. })));
        // A non-boolean hedging value in a file is a typed parse error.
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "faults", "hedging": 1}"#),
            Err(SpecError::Bad { .. })
        ));
    }

    #[test]
    fn trace_param_round_trips_and_validates() {
        let mut spec = RunSpec::defaults("obs");
        spec.trace = Some("out/trace.json".to_string());
        assert_eq!(spec.validate(), Ok(()));
        // Renders as a nested object, mirroring exec.
        let text = spec.render();
        assert!(text.contains("\"trace\""));
        assert!(text.contains("\"path\": \"out/trace.json\""));
        let back = RunSpec::parse(&text).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.params_set(), vec![ParamKey::Trace]);
        // --set reaches the same field through the dotted key.
        let mut from_set = RunSpec::defaults("obs");
        from_set.set("trace.path", "out/trace.json").unwrap();
        assert_eq!(from_set, spec);
        // Unknown nested fields and non-string paths are typed errors.
        assert_eq!(
            RunSpec::parse(r#"{"experiment": "obs", "trace": {"pth": "x"}}"#),
            Err(SpecError::UnknownField("trace.pth".to_string()))
        );
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "obs", "trace": {"path": 3}}"#),
            Err(SpecError::Bad { .. })
        ));
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "obs", "trace": "x"}"#),
            Err(SpecError::Bad { .. })
        ));
        // An empty path is rejected at validation.
        let mut bad = RunSpec::defaults("obs");
        bad.trace = Some(String::new());
        assert!(matches!(bad.validate(), Err(SpecError::Bad { .. })));
    }

    #[test]
    fn traffic_params_round_trip_and_validate() {
        let mut spec = RunSpec::defaults("scale");
        spec.arrival = Some("mmpp".to_string());
        spec.size_alpha_x1024 = Some(1536);
        spec.size_min_x1024 = Some(1024);
        spec.size_max_x1024 = Some(8192);
        assert_eq!(spec.validate(), Ok(()));
        // Bit-exact render→parse round trip (everything is a string or an
        // integer ≤ 2^53−1, so the JSON f64 path is lossless).
        let back = RunSpec::parse(&spec.render()).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.render(), spec.render());
        assert_eq!(
            back.params_set(),
            vec![
                ParamKey::Arrival,
                ParamKey::SizeAlpha,
                ParamKey::SizeMin,
                ParamKey::SizeMax,
            ]
        );
        // --set reaches the same fields…
        let mut from_set = RunSpec::defaults("scale");
        from_set.set("arrival", "mmpp").unwrap();
        from_set.set("size_alpha_x1024", "1536").unwrap();
        from_set.set("size_min_x1024", "1024").unwrap();
        from_set.set("size_max_x1024", "8192").unwrap();
        assert_eq!(from_set, spec);
        // …and malformed values are typed errors.
        assert!(matches!(
            from_set.set("size_alpha_x1024", "steep"),
            Err(SpecError::Bad { .. })
        ));
        // Validation rejects unknown traffic models, zero sizes, and an
        // inverted size range.
        let mut bad = RunSpec::defaults("scale");
        bad.arrival = Some("lunar".to_string());
        assert!(matches!(bad.validate(), Err(SpecError::Bad { .. })));
        let mut bad = RunSpec::defaults("scale");
        bad.size_min_x1024 = Some(0);
        assert!(matches!(bad.validate(), Err(SpecError::Bad { .. })));
        let mut bad = RunSpec::defaults("scale");
        bad.size_min_x1024 = Some(4096);
        bad.size_max_x1024 = Some(1024);
        assert!(matches!(bad.validate(), Err(SpecError::Bad { .. })));
        // A non-string arrival in a file is a typed parse error.
        assert!(matches!(
            RunSpec::parse(r#"{"experiment": "scale", "arrival": 3}"#),
            Err(SpecError::Bad { .. })
        ));
    }

    #[test]
    fn spec_errors_display_usefully() {
        assert!(SpecError::Missing("experiment")
            .to_string()
            .contains("experiment"));
        assert!(SpecError::UnknownKey("x".into())
            .to_string()
            .contains("'x'"));
        assert!(SpecError::KeyNotAccepted {
            experiment: "fig8".into(),
            key: "requests"
        }
        .to_string()
        .contains("fig8"));
        assert!(SpecError::ExperimentMismatch {
            spec: "serve".into(),
            requested: "fig8".into()
        }
        .to_string()
        .contains("serve"));
    }
}
