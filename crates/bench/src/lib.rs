//! # nbsmt-bench
//!
//! The benchmark harness of the NB-SMT / SySMT reproduction: every table
//! and figure of the paper as a first-class [`Experiment`] in the
//! [`ExperimentRegistry`], driven by a declarative [`RunSpec`]
//! (JSON-committable, bit-exact round-tripping, typed validation), plus the
//! [`engine::NbSmtEngine`] bridge that plugs the NB-SMT emulation into
//! quantized model execution and the `repro` binary — a thin driver over
//! the registry.
//!
//! Run `cargo run -p nbsmt-bench --release --bin repro -- all` to regenerate
//! every table and figure, pass an individual experiment id (`fig1`,
//! `table3`, …), or replay a committed spec with `-- --spec
//! examples/specs/serve_small.json`. Criterion benches under `benches/`
//! time the same experiment kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod json;
pub mod loadgen;
pub mod scale;
pub mod spec;
pub mod summary;
pub mod trace_export;

pub use engine::{NbSmtEngine, NbSmtEngineConfig};
pub use experiments::registry::{
    Experiment, ExperimentError, ExperimentInfo, ExperimentRegistry, RunReport, SummarySink,
};
pub use json::Json;
pub use scale::{ExecSettings, Scale};
pub use spec::{ParamKey, RunSpec, SpecError};
pub use summary::{
    BenchRecord, BenchSummary, ControlRecord, ControlSummary, ServeRecord, ServeSummary,
};
pub use trace_export::{chrome_trace, render_chrome_trace, stage_summary};
