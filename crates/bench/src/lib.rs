//! # nbsmt-bench
//!
//! The benchmark harness of the NB-SMT / SySMT reproduction: one experiment
//! function per table and figure of the paper, the [`engine::NbSmtEngine`]
//! bridge that plugs the NB-SMT emulation into quantized model execution,
//! and the `repro` binary that prints each regenerated table.
//!
//! Run `cargo run -p nbsmt-bench --release --bin repro -- all` to regenerate
//! every table and figure, or pass an individual experiment id (`fig1`,
//! `table3`, …). Criterion benches under `benches/` time the same experiment
//! kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod json;
pub mod loadgen;
pub mod scale;
pub mod summary;

pub use engine::{NbSmtEngine, NbSmtEngineConfig};
pub use json::Json;
pub use scale::{ExecSettings, Scale};
pub use summary::{BenchRecord, BenchSummary, ServeRecord, ServeSummary};
