//! Experiment scale control.
//!
//! Every experiment can run at a reduced scale (for unit tests and quick
//! smoke runs) or at full scale (for the published numbers in
//! EXPERIMENTS.md). The scale only affects sample counts — never the code
//! paths being exercised.

use serde::{Deserialize, Serialize};

/// How much work an experiment performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Small sample counts: seconds per experiment, used by tests and
    /// Criterion benches.
    #[default]
    Quick,
    /// The sample counts used to produce EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// SynthNet training samples per class.
    pub fn train_per_class(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Full => 80,
        }
    }

    /// SynthNet held-out samples per class.
    pub fn test_per_class(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 40,
        }
    }

    /// SynthNet training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 12,
        }
    }

    /// Cap on synthesized GEMM rows per zoo layer.
    pub fn max_rows(self) -> usize {
        match self {
            Scale::Quick => 64,
            Scale::Full => 192,
        }
    }

    /// Cap on synthesized GEMM columns per zoo layer.
    pub fn max_cols(self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 96,
        }
    }

    /// Column stride used when enumerating MAC pairs of large layers.
    pub fn col_stride(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_larger_everywhere() {
        assert!(Scale::Full.train_per_class() > Scale::Quick.train_per_class());
        assert!(Scale::Full.test_per_class() > Scale::Quick.test_per_class());
        assert!(Scale::Full.epochs() > Scale::Quick.epochs());
        assert!(Scale::Full.max_rows() > Scale::Quick.max_rows());
        assert!(Scale::Full.max_cols() > Scale::Quick.max_cols());
        assert!(Scale::Full.col_stride() < Scale::Quick.col_stride());
        assert_eq!(Scale::default(), Scale::Quick);
    }
}
