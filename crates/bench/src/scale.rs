//! Experiment scale and host-execution control.
//!
//! Every experiment can run at a reduced scale (for unit tests and quick
//! smoke runs) or at full scale (for the published numbers in
//! EXPERIMENTS.md). The scale only affects sample counts — never the code
//! paths being exercised. Orthogonally, [`ExecSettings`] carries the host
//! execution configuration (worker threads + GEMM backend, from the
//! `repro` CLI's `--threads` / `--backend` flags) into the experiments;
//! by the execution-layer determinism contract it affects wall-clock time
//! only, never the numbers produced.

use serde::{Deserialize, Serialize};

use nbsmt_tensor::exec::{available_threads, ExecConfig, ExecContext, GemmBackendKind};

/// How much work an experiment performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// Small sample counts: seconds per experiment, used by tests and
    /// Criterion benches.
    #[default]
    Quick,
    /// The sample counts used to produce EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses a spec/CLI-style scale name (`quick`, `full`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The canonical lower-case name (the value used in spec files).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// SynthNet training samples per class.
    pub fn train_per_class(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Full => 80,
        }
    }

    /// SynthNet held-out samples per class.
    pub fn test_per_class(self) -> usize {
        match self {
            Scale::Quick => 12,
            Scale::Full => 40,
        }
    }

    /// SynthNet training epochs.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Quick => 6,
            Scale::Full => 12,
        }
    }

    /// Cap on synthesized GEMM rows per zoo layer.
    pub fn max_rows(self) -> usize {
        match self {
            Scale::Quick => 64,
            Scale::Full => 192,
        }
    }

    /// Cap on synthesized GEMM columns per zoo layer.
    pub fn max_cols(self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 96,
        }
    }

    /// Column stride used when enumerating MAC pairs of large layers.
    pub fn col_stride(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 1,
        }
    }
}

/// Host-execution settings for an experiment run: how many worker threads
/// the execution layer may use and which GEMM backend it dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSettings {
    /// Worker threads for the execution layer's pool.
    pub threads: usize,
    /// GEMM backend.
    pub backend: GemmBackendKind,
}

impl ExecSettings {
    /// The `repro` CLI default: the parallel backend over every available
    /// hardware thread.
    pub fn parallel() -> Self {
        ExecSettings {
            threads: available_threads(),
            backend: GemmBackendKind::Parallel,
        }
    }

    /// One thread, seed scalar kernel — the degenerate mode CI smokes.
    pub fn sequential() -> Self {
        ExecSettings {
            threads: 1,
            backend: GemmBackendKind::Naive,
        }
    }

    /// The raw execution config these settings describe (for APIs that
    /// spawn their own contexts, like the threaded replica pool).
    pub fn config(&self) -> ExecConfig {
        ExecConfig {
            threads: self.threads,
            backend: self.backend,
            ..ExecConfig::default()
        }
    }

    /// Builds the execution context these settings describe.
    pub fn context(&self) -> ExecContext {
        ExecContext::new(self.config())
    }
}

impl Default for ExecSettings {
    fn default() -> Self {
        Self::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_settings_build_matching_contexts() {
        let seq = ExecSettings::sequential().context();
        assert_eq!(seq.threads(), 1);
        assert_eq!(seq.config().backend, GemmBackendKind::Naive);
        let par = ExecSettings::default().context();
        assert!(par.threads() >= 1);
        assert_eq!(par.config().backend, GemmBackendKind::Parallel);
    }

    #[test]
    fn full_scale_is_larger_everywhere() {
        assert!(Scale::Full.train_per_class() > Scale::Quick.train_per_class());
        assert!(Scale::Full.test_per_class() > Scale::Quick.test_per_class());
        assert!(Scale::Full.epochs() > Scale::Quick.epochs());
        assert!(Scale::Full.max_rows() > Scale::Quick.max_rows());
        assert!(Scale::Full.max_cols() > Scale::Quick.max_cols());
        assert!(Scale::Full.col_stride() < Scale::Quick.col_stride());
        assert_eq!(Scale::default(), Scale::Quick);
    }
}
