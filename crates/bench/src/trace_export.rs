//! Chrome trace-event export and per-stage summaries for serving traces.
//!
//! Converts a [`TraceSnapshot`] (the canonically ordered view of a
//! [`nbsmt_serve::TraceRecorder`]) into the Chrome trace-event JSON format —
//! loadable in `chrome://tracing` or Perfetto — through the same hand-rolled
//! [`crate::json`] writer every other artifact in this crate uses. Spans
//! (queue wait, batch, kernel, service) become `"ph": "X"` duration events;
//! submit/respond markers become `"ph": "i"` instants. `pid` is always 0 and
//! `tid` is the replica index, so each replica renders as its own track.
//!
//! Determinism rides on two facts: the snapshot is canonically sorted (worker
//! interleaving never changes event order), and every number the exporter
//! emits is either an integer or an exact IEEE division by 1000 (ns → µs).
//! Identical snapshots therefore render to byte-identical strings —
//! the property the lockstep-vs-simulator trace tests assert.
//!
//! [`stage_summary`] is the human end of the same data: a fixed-width text
//! table with per-stage event counts and p50/p95/p99 durations.

use nbsmt_serve::TraceEvent;
use nbsmt_serve::{LatencyHistogram, TraceSnapshot, TraceStage};

use crate::json::Json;

/// Every pipeline stage in rank order — the row order of [`stage_summary`].
pub const ALL_STAGES: [TraceStage; 6] = [
    TraceStage::Submit,
    TraceStage::QueueWait,
    TraceStage::Batch,
    TraceStage::Kernel,
    TraceStage::Service,
    TraceStage::Respond,
];

/// Converts a snapshot to a Chrome trace-event document.
///
/// The returned object has the standard `traceEvents` array plus an
/// `otherData` block carrying the recorder's `dropped` count and ring
/// `capacity`, so a viewer (or the CI smoke test) can tell whether the trace
/// is complete.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> Json {
    let events: Vec<Json> = snapshot.events.iter().map(event_json).collect();
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
        (
            "otherData",
            Json::obj([
                ("dropped", Json::Num(snapshot.dropped as f64)),
                ("capacity", Json::Num(snapshot.capacity as f64)),
            ]),
        ),
    ])
}

/// Renders a snapshot as Chrome trace-event JSON text (ends with a newline,
/// like every file [`crate::json`] writes). Identical snapshots render to
/// byte-identical strings.
pub fn render_chrome_trace(snapshot: &TraceSnapshot) -> String {
    chrome_trace(snapshot).render()
}

fn event_json(event: &TraceEvent) -> Json {
    // Chrome's ts/dur are microseconds; dividing integer nanoseconds by
    // 1000.0 is one deterministic IEEE operation, so equal events always
    // serialize equally.
    let mut fields = vec![
        ("name".to_string(), Json::str(event.stage.name())),
        (
            "ph".to_string(),
            Json::str(if event.stage.is_instant() { "i" } else { "X" }),
        ),
        ("ts".to_string(), Json::Num(event.start_ns as f64 / 1000.0)),
    ];
    if event.stage.is_instant() {
        // Thread-scoped instant: renders as a marker on the replica track.
        fields.push(("s".to_string(), Json::str("t")));
    } else {
        fields.push(("dur".to_string(), Json::Num(event.dur_ns as f64 / 1000.0)));
    }
    fields.push(("pid".to_string(), Json::Num(0.0)));
    fields.push(("tid".to_string(), Json::Num(event.replica as f64)));
    let mut args: Vec<(String, Json)> = Vec::new();
    if let Some(request) = event.request {
        args.push(("request".to_string(), Json::Num(request as f64)));
    }
    if let Some(batch) = event.batch {
        args.push(("batch".to_string(), Json::Num(batch as f64)));
    }
    if let Some(mode) = event.mode {
        args.push(("mode".to_string(), Json::Num(mode as f64)));
    }
    if let Some(layer) = event.layer {
        args.push(("layer".to_string(), Json::Num(layer as f64)));
    }
    if let Some(size) = event.batch_size {
        args.push(("batch_size".to_string(), Json::Num(size as f64)));
    }
    if let Some(stats) = &event.stats {
        args.push(("pe_cycles".to_string(), Json::Num(stats.cycles as f64)));
        args.push((
            "pe_busy_cycles".to_string(),
            Json::Num(stats.busy_cycles as f64),
        ));
        args.push((
            "pe_collision_cycles".to_string(),
            Json::Num(stats.collision_cycles as f64),
        ));
        args.push((
            "pe_reduced_thread_slots".to_string(),
            Json::Num(stats.reduced_thread_slots as f64),
        ));
        args.push((
            "pe_active_thread_slots".to_string(),
            Json::Num(stats.active_thread_slots as f64),
        ));
    }
    if !args.is_empty() {
        fields.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

/// A fixed-width per-stage breakdown: event count and p50/p95/p99 span
/// durations (µs) for every stage present in the snapshot, plus a drop
/// warning when the ring overflowed. Instant stages (submit, respond) report
/// counts only — their durations are zero by construction.
pub fn stage_summary(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}\n",
        "stage", "events", "p50_us", "p95_us", "p99_us"
    ));
    for stage in ALL_STAGES {
        let mut hist = LatencyHistogram::new();
        for event in snapshot.events.iter().filter(|e| e.stage == stage) {
            hist.record(event.dur_ns);
        }
        if hist.count() == 0 {
            continue;
        }
        if stage.is_instant() {
            out.push_str(&format!(
                "{:<12} {:>8} {:>12} {:>12} {:>12}\n",
                stage.name(),
                hist.count(),
                "-",
                "-",
                "-"
            ));
        } else {
            out.push_str(&format!(
                "{:<12} {:>8} {:>12.1} {:>12.1} {:>12.1}\n",
                stage.name(),
                hist.count(),
                hist.quantile(0.50) as f64 / 1000.0,
                hist.quantile(0.95) as f64 / 1000.0,
                hist.quantile(0.99) as f64 / 1000.0,
            ));
        }
    }
    if snapshot.dropped > 0 {
        out.push_str(&format!(
            "warning: ring dropped {} events (capacity {})\n",
            snapshot.dropped, snapshot.capacity
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_serve::{TraceEvent, TraceRecorder};

    fn sample_snapshot() -> TraceSnapshot {
        let rec = TraceRecorder::virtual_clock();
        rec.record(TraceEvent::new(TraceStage::Submit, 0, 0, 0).request(7));
        rec.record(
            TraceEvent::new(TraceStage::Batch, 0, 100, 900)
                .batch(1)
                .mode(2)
                .batch_size(3),
        );
        rec.record(
            TraceEvent::new(TraceStage::Kernel, 0, 100, 400)
                .batch(1)
                .mode(2)
                .layer(0)
                .stats(nbsmt_core::pe::PeStats {
                    cycles: 10,
                    busy_cycles: 8,
                    collision_cycles: 2,
                    reduced_thread_slots: 1,
                    active_thread_slots: 9,
                }),
        );
        rec.record(
            TraceEvent::new(TraceStage::QueueWait, 0, 0, 100)
                .request(7)
                .batch(1),
        );
        rec.record(
            TraceEvent::new(TraceStage::Service, 0, 100, 900)
                .request(7)
                .batch(1)
                .mode(2),
        );
        rec.record(
            TraceEvent::new(TraceStage::Respond, 0, 1000, 0)
                .request(7)
                .batch(1),
        );
        rec.snapshot()
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_metadata() {
        let doc = chrome_trace(&sample_snapshot());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 6);
        // Instants carry a scope but no duration; spans the reverse.
        for event in events {
            let ph = event.get("ph").unwrap().as_str().unwrap();
            match ph {
                "i" => {
                    assert!(event.get("s").is_some());
                    assert!(event.get("dur").is_none());
                }
                "X" => {
                    assert!(event.get("dur").is_some());
                    assert!(event.get("s").is_none());
                }
                other => panic!("unexpected phase {other}"),
            }
            assert_eq!(event.get("pid").unwrap().as_u64(), Some(0));
        }
        // Kernel spans surface the PE counters in args.
        let kernel = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("kernel"))
            .unwrap();
        let args = kernel.get("args").unwrap();
        assert_eq!(args.get("pe_collision_cycles").unwrap().as_u64(), Some(2));
        assert_eq!(args.get("layer").unwrap().as_u64(), Some(0));
        // Recorder health is in otherData.
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn identical_snapshots_render_identically() {
        let a = render_chrome_trace(&sample_snapshot());
        let b = render_chrome_trace(&sample_snapshot());
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        // And the rendered document is valid JSON by our own parser.
        Json::parse(&a).expect("exported trace parses");
    }

    #[test]
    fn stage_summary_lists_stages_and_drops() {
        let mut snapshot = sample_snapshot();
        let text = stage_summary(&snapshot);
        for name in [
            "submit",
            "queue_wait",
            "batch",
            "kernel",
            "service",
            "respond",
        ] {
            assert!(text.contains(name), "summary is missing {name}: {text}");
        }
        assert!(!text.contains("warning"));
        snapshot.dropped = 5;
        let text = stage_summary(&snapshot);
        assert!(text.contains("dropped 5 events"));
    }
}
