//! Seeded load generation for the serving experiments.
//!
//! Arrival models, matching standard serving-benchmark methodology
//! (e.g. MLPerf Inference's server / multi-stream scenarios):
//!
//! * **Open loop** — requests arrive by a Poisson process at a fixed offered
//!   rate, independent of the server's progress. Models anonymous internet
//!   traffic; overload shows up as queueing and shed load.
//! * **Closed loop** — N clients submit, wait for the response, think, and
//!   submit again. Models a fixed client population; load self-regulates to
//!   the server's throughput.
//! * **Generated** — a lazy, seeded [`TrafficModel`] stream (bursty MMPP, a
//!   diurnal rate envelope, per-user session streams): the
//!   million-request regime, where materializing a trace `Vec` is exactly
//!   what we must not do. Built by [`lazy_poisson`], [`mmpp`], [`diurnal`],
//!   and [`sessions`].
//!
//! Everything is fully determined by its seed. The materializing Poisson
//! sampler draws from the workspace's seeded `StdRng` shim; the lazy
//! builders delegate to `nbsmt_serve::traffic`, whose generators avoid
//! `libm` entirely so streams are bit-stable across platforms. The two
//! disciplines share one **seed-independence rule**: arrival times and
//! request sizes never share an RNG stream — sizes are a pure function of
//! `(size seed, request key)` via [`pareto_sizes`], so regenerating
//! arrivals with a new seed leaves every request's size untouched, and vice
//! versa.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nbsmt_serve::sim::ArrivalProcess;
use nbsmt_serve::traffic::{SizeModel, TrafficModel};

/// Generates an ascending open-loop Poisson arrival trace: `n` arrival
/// timestamps (nanoseconds from t=0) with exponential inter-arrival times at
/// `rate_rps` requests per second. Deterministic per `(seed, rate_rps, n)`.
pub fn poisson_arrivals(seed: u64, rate_rps: f64, n: usize) -> Vec<u64> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / rate_rps;
    let mut t = 0.0f64;
    let mut arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        // Inverse-CDF exponential sample; u is in [0, 1) so 1-u is in
        // (0, 1] and the log is finite.
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() * mean_gap_ns;
        arrivals.push(t.min(u64::MAX as f64) as u64);
    }
    arrivals
}

/// Builds the open-loop Poisson [`ArrivalProcess`] for the simulator.
pub fn open_poisson(seed: u64, rate_rps: f64, n: usize) -> ArrivalProcess {
    ArrivalProcess::Open {
        arrivals_ns: poisson_arrivals(seed, rate_rps, n),
    }
}

/// Builds the all-at-once burst [`ArrivalProcess`]: `n` requests arriving
/// at t=0. This is the lockstep trace of the sharded determinism contract —
/// with every arrival preceding the first launch, a paused-then-resumed
/// threaded [`nbsmt_serve::pool::ReplicaPool`] and the virtual-clock
/// simulator form bit-identical batches.
pub fn burst(n: usize) -> ArrivalProcess {
    ArrivalProcess::Open {
        arrivals_ns: vec![0; n],
    }
}

/// Builds the closed-loop [`ArrivalProcess`]: `clients` concurrent clients
/// with `think_ns` between response and next submit, issuing
/// `total_requests` overall.
pub fn closed_loop(clients: usize, think_ns: u64, total_requests: usize) -> ArrivalProcess {
    ArrivalProcess::Closed {
        clients,
        think_ns,
        total_requests,
    }
}

/// Converts a requests-per-second rate to the integer milli-rps encoding the
/// [`TrafficModel`] family uses (1000 mrps = 1 rps), clamped to ≥ 1 so a
/// positive offered rate never rounds to a stalled generator.
fn to_mrps(rate_rps: f64) -> u64 {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    ((rate_rps * 1000.0).round() as u64).max(1)
}

/// Builds a **lazy** open-loop Poisson [`ArrivalProcess`] at `rate_rps`:
/// the `n` arrivals stream one at a time inside the simulator, so traces of
/// 10^6–10^7 requests never materialize as a `Vec` (contrast
/// [`open_poisson`], which is fine at bench scale but not beyond).
pub fn lazy_poisson(seed: u64, rate_rps: f64, n: u64) -> ArrivalProcess {
    ArrivalProcess::Generated {
        model: TrafficModel::Poisson {
            rate_mrps: to_mrps(rate_rps),
        },
        seed,
        n,
    }
}

/// Builds a bursty Markov-modulated Poisson [`ArrivalProcess`]: a two-state
/// calm/burst chain with exponential sojourns of the given means, arriving
/// Poisson at `calm_rps` or `burst_rps` according to the current state.
/// Bursts are what push the adaptive pool up the dense→2T→4T ladder.
pub fn mmpp(
    seed: u64,
    calm_rps: f64,
    burst_rps: f64,
    mean_calm_ns: u64,
    mean_burst_ns: u64,
    n: u64,
) -> ArrivalProcess {
    ArrivalProcess::Generated {
        model: TrafficModel::Mmpp {
            calm_mrps: to_mrps(calm_rps),
            burst_mrps: to_mrps(burst_rps),
            mean_calm_ns,
            mean_burst_ns,
        },
        seed,
        n,
    }
}

/// Builds a diurnal-envelope [`ArrivalProcess`]: a non-homogeneous Poisson
/// process whose rate sweeps a triangle wave from `trough_rps` to `peak_rps`
/// and back over `period_ns` of virtual time (one "day").
pub fn diurnal(
    seed: u64,
    trough_rps: f64,
    peak_rps: f64,
    period_ns: u64,
    n: u64,
) -> ArrivalProcess {
    ArrivalProcess::Generated {
        model: TrafficModel::Diurnal {
            trough_mrps: to_mrps(trough_rps),
            peak_mrps: to_mrps(peak_rps),
            period_ns,
        },
        seed,
        n,
    }
}

/// Builds a per-user session-stream [`ArrivalProcess`]: users arrive
/// Poisson at `users_per_s`, each issuing `requests_per_user` requests
/// spaced `think_ns` apart. The emitted router key is the **user id**, so
/// hashed routing pins each session to one replica.
pub fn sessions(
    seed: u64,
    users_per_s: f64,
    requests_per_user: u64,
    think_ns: u64,
    n: u64,
) -> ArrivalProcess {
    ArrivalProcess::Generated {
        model: TrafficModel::Sessions {
            user_mrps: to_mrps(users_per_s),
            requests_per_user,
            think_ns,
        },
        seed,
        n,
    }
}

/// Builds the heavy-tailed request-size model: bounded Pareto on
/// `[min_x1024, max_x1024]` (x1024 fixed point; 1024 = 1.0× the model's
/// per-request MACs) with shape `alpha_x1024 / 1024`. Sizes are a pure
/// function of `(seed, key)` — independent of every arrival stream by
/// construction, which is the seed-independence rule the loadgen pins in
/// its tests.
pub fn pareto_sizes(seed: u64, alpha_x1024: u64, min_x1024: u64, max_x1024: u64) -> SizeModel {
    SizeModel::BoundedPareto {
        seed,
        alpha_x1024,
        min_x1024,
        max_x1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seed_deterministic_and_ascending() {
        let a = poisson_arrivals(7, 1000.0, 256);
        let b = poisson_arrivals(7, 1000.0, 256);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = poisson_arrivals(8, 1000.0, 256);
        assert_ne!(a, c, "different seeds must give different traces");
    }

    #[test]
    fn poisson_mean_rate_is_close_to_offered() {
        let rate = 2000.0;
        let n = 4096;
        let arrivals = poisson_arrivals(42, rate, n);
        let span_s = *arrivals.last().unwrap() as f64 / 1e9;
        let measured = n as f64 / span_s;
        assert!(
            (measured / rate - 1.0).abs() < 0.1,
            "measured {measured:.0} rps vs offered {rate:.0} rps"
        );
    }

    #[test]
    fn arrival_process_builders() {
        match open_poisson(1, 100.0, 8) {
            ArrivalProcess::Open { arrivals_ns } => assert_eq!(arrivals_ns.len(), 8),
            other => panic!("expected open loop, got {other:?}"),
        }
        match closed_loop(4, 100, 32) {
            ArrivalProcess::Closed {
                clients,
                think_ns,
                total_requests,
            } => {
                assert_eq!((clients, think_ns, total_requests), (4, 100, 32));
            }
            other => panic!("expected closed loop, got {other:?}"),
        }
    }

    #[test]
    fn burst_arrives_all_at_once() {
        match burst(5) {
            ArrivalProcess::Open { arrivals_ns } => assert_eq!(arrivals_ns, vec![0; 5]),
            other => panic!("expected open loop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "offered rate must be positive")]
    fn zero_rate_panics() {
        let _ = poisson_arrivals(1, 0.0, 4);
    }

    #[test]
    fn lazy_builders_produce_generated_processes() {
        let cases = [
            lazy_poisson(3, 2500.0, 100),
            mmpp(3, 500.0, 8000.0, 4_000_000, 1_000_000, 100),
            diurnal(3, 200.0, 4000.0, 60_000_000, 100),
            sessions(3, 1000.0, 4, 250_000, 100),
        ];
        for case in cases {
            let ArrivalProcess::Generated { model, seed, n } = case else {
                panic!("lazy builders must build Generated processes");
            };
            assert_eq!((seed, n), (3, 100));
            assert_eq!(model.check(), Ok(()));
            let stream: Vec<_> = model.generate(seed, n).collect();
            assert_eq!(stream.len(), 100);
            assert!(stream.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
        }
    }

    #[test]
    fn sub_rps_rates_round_up_to_a_live_generator() {
        let ArrivalProcess::Generated { model, .. } = lazy_poisson(1, 0.0001, 4) else {
            panic!("expected generated");
        };
        assert_eq!(model.check(), Ok(()), "tiny rates must not stall");
    }

    #[test]
    fn pareto_sizes_are_independent_of_the_arrival_seed() {
        // The seed-independence rule: regenerate arrivals under a different
        // seed, and every request key's size is untouched — sizes are a
        // pure function of (size seed, key), never of the arrival stream.
        let sizes = pareto_sizes(77, 1536, 1024, 8192);
        let before: Vec<u64> = (0..64).map(|k| sizes.size_x1024(k)).collect();
        let a = match mmpp(10, 500.0, 8000.0, 4_000_000, 1_000_000, 64) {
            ArrivalProcess::Generated { model, seed, n } => model.generate(seed, n).count(),
            _ => unreachable!(),
        };
        let b = match mmpp(11, 500.0, 8000.0, 4_000_000, 1_000_000, 64) {
            ArrivalProcess::Generated { model, seed, n } => model.generate(seed, n).count(),
            _ => unreachable!(),
        };
        assert_eq!((a, b), (64, 64));
        let after: Vec<u64> = (0..64).map(|k| sizes.size_x1024(k)).collect();
        assert_eq!(before, after);
        // And the symmetric direction: a different size seed leaves the
        // arrival stream bit-identical.
        let arrivals = |s| match mmpp(10, 500.0, 8000.0, 4_000_000, 1_000_000, 64) {
            ArrivalProcess::Generated { model, seed, n } => {
                let _ = pareto_sizes(s, 1536, 1024, 8192).size_x1024(0);
                model.generate(seed, n).collect::<Vec<_>>()
            }
            _ => unreachable!(),
        };
        assert_eq!(arrivals(1), arrivals(2));
    }
}
