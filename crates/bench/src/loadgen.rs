//! Seeded load generation for the serving experiments.
//!
//! Two arrival models, matching standard serving-benchmark methodology
//! (e.g. MLPerf Inference's server / multi-stream scenarios):
//!
//! * **Open loop** — requests arrive by a Poisson process at a fixed offered
//!   rate, independent of the server's progress. Models anonymous internet
//!   traffic; overload shows up as queueing and shed load.
//! * **Closed loop** — N clients submit, wait for the response, think, and
//!   submit again. Models a fixed client population; load self-regulates to
//!   the server's throughput.
//!
//! Both are fully determined by their seed: the exponential inter-arrival
//! sampler draws from the workspace's seeded `StdRng` shim, and the closed
//! loop needs no randomness at all (arrivals emerge from virtual-clock
//! completions in `nbsmt_serve::sim`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nbsmt_serve::sim::ArrivalProcess;

/// Generates an ascending open-loop Poisson arrival trace: `n` arrival
/// timestamps (nanoseconds from t=0) with exponential inter-arrival times at
/// `rate_rps` requests per second. Deterministic per `(seed, rate_rps, n)`.
pub fn poisson_arrivals(seed: u64, rate_rps: f64, n: usize) -> Vec<u64> {
    assert!(rate_rps > 0.0, "offered rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / rate_rps;
    let mut t = 0.0f64;
    let mut arrivals = Vec::with_capacity(n);
    for _ in 0..n {
        // Inverse-CDF exponential sample; u is in [0, 1) so 1-u is in
        // (0, 1] and the log is finite.
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() * mean_gap_ns;
        arrivals.push(t.min(u64::MAX as f64) as u64);
    }
    arrivals
}

/// Builds the open-loop Poisson [`ArrivalProcess`] for the simulator.
pub fn open_poisson(seed: u64, rate_rps: f64, n: usize) -> ArrivalProcess {
    ArrivalProcess::Open {
        arrivals_ns: poisson_arrivals(seed, rate_rps, n),
    }
}

/// Builds the all-at-once burst [`ArrivalProcess`]: `n` requests arriving
/// at t=0. This is the lockstep trace of the sharded determinism contract —
/// with every arrival preceding the first launch, a paused-then-resumed
/// threaded [`nbsmt_serve::pool::ReplicaPool`] and the virtual-clock
/// simulator form bit-identical batches.
pub fn burst(n: usize) -> ArrivalProcess {
    ArrivalProcess::Open {
        arrivals_ns: vec![0; n],
    }
}

/// Builds the closed-loop [`ArrivalProcess`]: `clients` concurrent clients
/// with `think_ns` between response and next submit, issuing
/// `total_requests` overall.
pub fn closed_loop(clients: usize, think_ns: u64, total_requests: usize) -> ArrivalProcess {
    ArrivalProcess::Closed {
        clients,
        think_ns,
        total_requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_trace_is_seed_deterministic_and_ascending() {
        let a = poisson_arrivals(7, 1000.0, 256);
        let b = poisson_arrivals(7, 1000.0, 256);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = poisson_arrivals(8, 1000.0, 256);
        assert_ne!(a, c, "different seeds must give different traces");
    }

    #[test]
    fn poisson_mean_rate_is_close_to_offered() {
        let rate = 2000.0;
        let n = 4096;
        let arrivals = poisson_arrivals(42, rate, n);
        let span_s = *arrivals.last().unwrap() as f64 / 1e9;
        let measured = n as f64 / span_s;
        assert!(
            (measured / rate - 1.0).abs() < 0.1,
            "measured {measured:.0} rps vs offered {rate:.0} rps"
        );
    }

    #[test]
    fn arrival_process_builders() {
        match open_poisson(1, 100.0, 8) {
            ArrivalProcess::Open { arrivals_ns } => assert_eq!(arrivals_ns.len(), 8),
            other => panic!("expected open loop, got {other:?}"),
        }
        match closed_loop(4, 100, 32) {
            ArrivalProcess::Closed {
                clients,
                think_ns,
                total_requests,
            } => {
                assert_eq!((clients, think_ns, total_requests), (4, 100, 32));
            }
            other => panic!("expected closed loop, got {other:?}"),
        }
    }

    #[test]
    fn burst_arrives_all_at_once() {
        match burst(5) {
            ArrivalProcess::Open { arrivals_ns } => assert_eq!(arrivals_ns, vec![0; 5]),
            other => panic!("expected open loop, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "offered rate must be positive")]
    fn zero_rate_panics() {
        let _ = poisson_arrivals(1, 0.0, 4);
    }
}
