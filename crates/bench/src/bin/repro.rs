//! `repro` — regenerates every table and figure of the NB-SMT paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p nbsmt-bench --release --bin repro -- <experiment> \
//!     [--full] [--threads N] [--backend {naive,blocked,parallel}] \
//!     [--requests N] [--replicas N[,N...]] [--list]
//! ```
//!
//! Run `repro -- --list` to enumerate the experiments with one-line
//! descriptions. `--full` runs the full-scale configuration used for
//! EXPERIMENTS.md (slower); the default quick scale exercises the same code
//! with smaller sample counts.
//!
//! `--threads` / `--backend` configure the host execution layer (default:
//! the `parallel` backend over every available hardware thread). By the
//! execution layer's determinism contract they change wall-clock time only
//! — every reproduced number is identical for every setting. `gemmbench`
//! and `serve` write `BENCH_baseline.json` / `BENCH_serve.json`; they only
//! run when requested explicitly (neither is part of `all`, so regenerating
//! tables never clobbers the tracked summaries). `--requests N` sets the
//! serving sweep's trace length, and `--replicas N[,N...]` the replica
//! counts the `shard` sweep runs at (default `1,2,4`).

use std::env;

use nbsmt_bench::experiments::accuracy::{
    fig10_pruning, fig7_robustness, mlperf_mobilenet, table3_policies, table4_comparison,
    table5_slowdown, AccuracyBench,
};
use nbsmt_bench::experiments::hw_exp::table2_rows;
use nbsmt_bench::experiments::serve_exp::{
    serve_summary, serve_sweep_with, shard_summary, shard_sweep_with,
};
use nbsmt_bench::experiments::zoo_exp::{
    energy_savings_with, fig1_utilization, fig8_mse_vs_sparsity_with, fig9_utilization_gain_with,
    table1_inventory,
};
use nbsmt_bench::{BenchSummary, ExecSettings, Scale};
use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_quant::scheme::QuantScheme;
use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_tensor::ops;
use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_tensor::tensor::Matrix;

/// Every experiment id with a one-line description (`--list` output and the
/// unknown-experiment error message).
const EXPERIMENTS: &[(&str, &str)] = &[
    (
        "table1",
        "Table I — evaluated CNN models and their MAC counts",
    ),
    (
        "fig1",
        "Fig. 1 — MAC utilization breakdown during CNN inference",
    ),
    ("table2", "Table II — design parameters, power, and area"),
    (
        "fig7",
        "Fig. 7 — whole-model robustness to precision reduction",
    ),
    ("table3", "Table III — 2T SySMT sharing policies"),
    (
        "table4",
        "Table IV — 2T SySMT vs post-training quantization",
    ),
    ("fig8", "Fig. 8 — per-layer MSE vs activation sparsity"),
    ("fig9", "Fig. 9 — utilization improvement vs sparsity"),
    (
        "table5",
        "Table V — 4T SySMT with high-MSE layers slowed to 2T",
    ),
    (
        "fig10",
        "Fig. 10 — accuracy vs 4T speedup for pruned models",
    ),
    (
        "energy",
        "§V-A — energy savings of SySMT over the baseline array",
    ),
    ("mlperf", "§V-B — MobileNet-v1 MLPerf-style operating point"),
    (
        "gemmbench",
        "host GEMM/NB-SMT throughput → BENCH_baseline.json (explicit only)",
    ),
    (
        "serve",
        "serving sweep: offered load × NB-SMT config → BENCH_serve.json (explicit only)",
    ),
    (
        "shard",
        "sharded serving sweep: replicas × route × {dense,adaptive} → BENCH_serve.json (explicit only)",
    ),
    (
        "all",
        "every paper table and figure above (not the bench writers)",
    ),
];

fn print_experiment_list() {
    println!("Known experiments:");
    for (name, description) in EXPERIMENTS {
        println!("  {name:<10} {description}");
    }
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut full = false;
    let mut exec = ExecSettings::parallel();
    let mut requests = 256usize;
    let mut replicas: Vec<usize> = vec![1, 2, 4];
    let mut experiment: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--list" => {
                print_experiment_list();
                return;
            }
            "--requests" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("--requests requires a value");
                    std::process::exit(2);
                });
                requests = value.parse().unwrap_or_else(|_| {
                    eprintln!("--requests: '{value}' is not a request count");
                    std::process::exit(2);
                });
                if requests == 0 {
                    eprintln!("--requests must be at least 1");
                    std::process::exit(2);
                }
            }
            "--replicas" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("--replicas requires a value");
                    std::process::exit(2);
                });
                replicas = value
                    .split(',')
                    .map(|part| match part.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => {
                            eprintln!("--replicas: '{part}' is not a replica count");
                            std::process::exit(2);
                        }
                    })
                    .collect();
                if replicas.is_empty() {
                    eprintln!("--replicas needs at least one count");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a value");
                    std::process::exit(2);
                });
                exec.threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads: '{value}' is not a thread count");
                    std::process::exit(2);
                });
            }
            "--backend" => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("--backend requires a value");
                    std::process::exit(2);
                });
                exec.backend = GemmBackendKind::parse(value).unwrap_or_else(|| {
                    eprintln!("--backend: '{value}' is not one of naive, blocked, parallel");
                    std::process::exit(2);
                });
            }
            other if !other.starts_with("--") => {
                if let Some(first) = &experiment {
                    eprintln!("unexpected extra experiment '{other}' after '{first}'");
                    std::process::exit(2);
                }
                experiment = Some(other.to_string());
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    let scale = if full { Scale::Full } else { Scale::Quick };
    let experiment = experiment.unwrap_or_else(|| "all".to_string());

    if !EXPERIMENTS.iter().any(|(name, _)| *name == experiment) {
        eprintln!("unknown experiment '{experiment}'.\n");
        eprintln!("Known experiments:");
        for (name, description) in EXPERIMENTS {
            eprintln!("  {name:<10} {description}");
        }
        eprintln!("\n(run with --list to see this at any time)");
        std::process::exit(2);
    }

    let ctx = exec.context();
    println!("# NB-SMT / SySMT reproduction — experiment: {experiment} (scale: {scale:?})");
    println!(
        "host execution: {} thread(s), {} backend\n",
        ctx.threads(),
        ctx.config().backend
    );

    let wants = |name: &str| experiment == name || experiment == "all";

    if wants("table1") {
        run_table1();
    }
    if wants("fig1") {
        run_fig1(scale);
    }
    if wants("table2") {
        run_table2();
    }
    if wants("fig8") {
        run_fig8(scale, &ctx);
    }
    if wants("fig9") {
        run_fig9(scale, &ctx);
    }
    if wants("energy") {
        run_energy(scale, &ctx);
    }
    if wants("mlperf") {
        run_mlperf();
    }
    // gemmbench and serve are explicit-only (not part of `all`): they write
    // the tracked BENCH_*.json summaries, which regenerating the paper's
    // tables should never do as a side effect.
    if experiment == "gemmbench" {
        run_gemmbench(scale, &exec);
    }
    if experiment == "serve" {
        run_serve(scale, &exec, requests);
    }
    if experiment == "shard" {
        run_shard(scale, &exec, requests, &replicas);
    }

    // Accuracy experiments share a single trained SynthNet.
    let needs_accuracy = ["fig7", "table3", "table4", "table5", "fig10"]
        .iter()
        .any(|e| wants(e));
    if needs_accuracy {
        println!("Training SynthNet (accuracy substrate, see ARCHITECTURE.md, substitution 1)…");
        let bench = AccuracyBench::prepare_with(scale, 2024, exec);
        println!(
            "SynthNet FP32 accuracy: {:.2}% | A8W8 accuracy: {:.2}%\n",
            bench.fp32_accuracy() * 100.0,
            bench.int8_accuracy() * 100.0
        );
        if wants("fig7") {
            run_fig7(&bench);
        }
        if wants("table3") {
            run_table3(&bench);
        }
        if wants("table4") {
            run_table4(&bench);
        }
        if wants("table5") {
            run_table5(&bench);
        }
        if wants("fig10") {
            run_fig10(&bench, scale);
        }
    }
}

fn run_table1() {
    println!("## Table I — evaluated CNN models (per-image MAC operations)\n");
    println!("{:<14} {:>12} {:>12}", "Model", "CONV [GMAC]", "FC [MMAC]");
    for row in table1_inventory() {
        println!(
            "{:<14} {:>12.2} {:>12.1}",
            row.model, row.conv_gmacs, row.fc_mmacs
        );
    }
    println!();
}

fn run_fig1(scale: Scale) {
    println!("## Fig. 1 — MAC utilization breakdown during CNN inference\n");
    println!(
        "{:<14} {:>12} {:>20} {:>8}",
        "Model", "Utilized", "Partially utilized", "Idle"
    );
    for row in fig1_utilization(scale) {
        println!(
            "{:<14} {:>11.1}% {:>19.1}% {:>7.1}%",
            row.model,
            row.fully_utilized * 100.0,
            row.partially_utilized * 100.0,
            row.idle * 100.0
        );
    }
    println!();
}

fn run_table2() {
    println!("## Table II — design parameters, power, and area\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "Design", "GMAC/s", "P@80% [mW]", "Area [mm2]", "Area [x]", "PE [um2]", "MAC [um2]"
    );
    for row in table2_rows() {
        println!(
            "{:<10} {:>12.0} {:>14.0} {:>12.3} {:>10.2} {:>10.0} {:>10.0}",
            row.design,
            row.throughput_gmacs,
            row.power_mw_at_80,
            row.total_area_mm2,
            row.area_ratio,
            row.pe_area_um2,
            row.mac_area_um2
        );
    }
    println!();
}

fn run_fig7(bench: &AccuracyBench) {
    println!("## Fig. 7 — whole-model robustness to on-the-fly precision reduction\n");
    println!("{:<8} {:>10}", "Point", "Top-1 [%]");
    for row in fig7_robustness(bench) {
        println!("{:<8} {:>10.2}", row.point, row.accuracy * 100.0);
    }
    println!();
}

fn run_table3(bench: &AccuracyBench) {
    println!("## Table III — 2T SySMT sharing policies (no reordering)\n");
    println!("{:<12} {:>10}", "Policy", "Top-1 [%]");
    for row in table3_policies(bench) {
        println!("{:<12} {:>10.2}", row.policy, row.accuracy * 100.0);
    }
    println!();
}

fn run_table4(bench: &AccuracyBench) {
    println!("## Table IV — 2T SySMT vs post-training quantization comparators\n");
    println!("{:<28} {:>10}", "Method", "Top-1 [%]");
    for row in table4_comparison(bench) {
        println!("{:<28} {:>10.2}", row.method, row.accuracy * 100.0);
    }
    println!();
}

fn run_fig8(scale: Scale, ctx: &ExecContext) {
    println!("## Fig. 8 — per-layer MSE vs activation sparsity (GoogLeNet proxy, 2T)\n");
    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "Layer", "Sparsity", "MSE w/o reorder", "MSE w/ reorder"
    );
    for p in fig8_mse_vs_sparsity_with(scale, ctx) {
        println!(
            "{:<26} {:>9.1}% {:>16.3e} {:>16.3e}",
            p.layer,
            p.sparsity * 100.0,
            p.mse_without_reorder,
            p.mse_with_reorder
        );
    }
    println!();
}

fn run_fig9(scale: Scale, ctx: &ExecContext) {
    println!("## Fig. 9 — utilization improvement vs sparsity (GoogLeNet proxy, 2T)\n");
    println!(
        "{:<26} {:>10} {:>17} {:>16} {:>10}",
        "Layer", "Sparsity", "Gain w/o reorder", "Gain w/ reorder", "Eq. 8"
    );
    for p in fig9_utilization_gain_with(scale, ctx) {
        println!(
            "{:<26} {:>9.1}% {:>17.3} {:>16.3} {:>10.3}",
            p.layer,
            p.sparsity * 100.0,
            p.gain_without_reorder,
            p.gain_with_reorder,
            p.analytic_gain
        );
    }
    println!();
}

fn run_table5(bench: &AccuracyBench) {
    println!("## Table V — 4T SySMT with high-MSE layers slowed to 2T\n");
    println!("{:<14} {:>10} {:>10}", "Layers @2T", "Top-1 [%]", "Speedup");
    for row in table5_slowdown(bench) {
        println!(
            "{:<14} {:>10.2} {:>9.2}x",
            row.layers_at_2t,
            row.accuracy * 100.0,
            row.speedup
        );
    }
    println!();
}

fn run_fig10(bench: &AccuracyBench, scale: Scale) {
    println!("## Fig. 10 — accuracy vs 4T speedup for pruned models\n");
    println!(
        "{:<10} {:>12} {:>10} {:>10}",
        "Pruned", "Layers @2T", "Top-1 [%]", "Speedup"
    );
    for p in fig10_pruning(bench, scale) {
        println!(
            "{:<10} {:>12} {:>10.2} {:>9.2}x",
            format!("{:.0}%", p.pruned * 100.0),
            p.layers_at_2t,
            p.accuracy * 100.0,
            p.speedup
        );
    }
    println!();
}

fn run_energy(scale: Scale, ctx: &ExecContext) {
    println!("## §V-A — energy savings of SySMT over the conventional array\n");
    println!("{:<14} {:>10} {:>10}", "Model", "2T saving", "4T saving");
    let rows = energy_savings_with(scale, ctx);
    let mut avg2 = 0.0;
    let mut avg4 = 0.0;
    for row in &rows {
        println!(
            "{:<14} {:>9.1}% {:>9.1}%",
            row.model,
            row.saving_2t * 100.0,
            row.saving_4t * 100.0
        );
        avg2 += row.saving_2t;
        avg4 += row.saving_4t;
    }
    println!(
        "{:<14} {:>9.1}% {:>9.1}%\n",
        "Average",
        avg2 / rows.len() as f64 * 100.0,
        avg4 / rows.len() as f64 * 100.0
    );
}

/// Times the GEMM backends and the NB-SMT layer emulation on the host and
/// writes the records to `BENCH_baseline.json` (the perf trajectory file).
fn run_gemmbench(scale: Scale, exec: &ExecSettings) {
    println!("## gemmbench — host execution layer throughput\n");
    let dim = match scale {
        Scale::Quick => 256,
        Scale::Full => 512,
    };
    let iters = match scale {
        Scale::Quick => 5,
        Scale::Full => 10,
    };
    let mut summary = BenchSummary::new();

    // Integer GEMM: one square problem per backend, plus the requested
    // thread count for the parallel backend.
    let mut synth = TensorSynthesizer::new(42);
    let to_i32 = |t: nbsmt_tensor::tensor::Tensor<f32>, r: usize, c: usize| {
        Matrix::from_vec(
            t.into_vec().iter().map(|&v| (v * 127.0) as i32).collect(),
            r,
            c,
        )
        .expect("dimensions match")
    };
    let a = to_i32(
        synth.tensor(&SynthesisConfig::activation(0.5, 0.5), &[dim, dim]),
        dim,
        dim,
    );
    let b = to_i32(
        synth.tensor(&SynthesisConfig::weight(0.3, 0.0), &[dim, dim]),
        dim,
        dim,
    );
    let macs = (dim * dim * dim) as u64;
    let mut runs: Vec<(String, ExecContext)> = vec![
        (
            format!("gemm_i32_{dim}_naive_1t"),
            ExecContext::sequential(),
        ),
        (
            format!("gemm_i32_{dim}_blocked_1t"),
            ExecContext::new(ExecConfig {
                threads: 1,
                backend: GemmBackendKind::Blocked,
                ..ExecConfig::default()
            }),
        ),
    ];
    let parallel_ctx = ExecContext::new(ExecConfig {
        threads: exec.threads,
        backend: GemmBackendKind::Parallel,
        ..ExecConfig::default()
    });
    // Name from the context's (clamped) thread count so the id always
    // matches the record's `threads` field.
    runs.push((
        format!("gemm_i32_{dim}_parallel_{}t", parallel_ctx.threads()),
        parallel_ctx,
    ));
    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "Benchmark", "mean [ms]", "GMAC/s", "threads"
    );
    for (name, ctx) in &runs {
        let record = summary.measure(
            name,
            ctx.threads(),
            ctx.config().backend.name(),
            macs,
            iters,
            || {
                ops::matmul_i32_with(ctx, &a, &b).expect("dimensions match");
            },
        );
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>10}",
            record.name,
            record.mean_ns / 1e6,
            record.gmacs_per_s(),
            record.threads
        );
    }

    // NB-SMT layer emulation at 2T and 4T through the configured context.
    let (m, k, n) = (dim / 2, dim, dim / 4);
    let qx = quantize_activations(
        &Matrix::from_vec(
            synth
                .tensor(&SynthesisConfig::activation(0.4, 0.5), &[m, k])
                .into_vec(),
            m,
            k,
        )
        .expect("dimensions match"),
        &QuantScheme::activation_a8(),
        Some((0.0, 1.0)),
    );
    let qw = quantize_weights(
        &Matrix::from_vec(
            synth
                .tensor(&SynthesisConfig::weight(0.12, 0.0), &[k, n])
                .into_vec(),
            k,
            n,
        )
        .expect("dimensions match"),
        &QuantScheme::weight_w8(),
    );
    let ctx = exec.context();
    for (label, threads) in [("2t", ThreadCount::Two), ("4t", ThreadCount::Four)] {
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        let name = format!("nbsmt_{label}_layer_{m}x{k}x{n}_{}t", ctx.threads());
        let record = summary.measure(
            &name,
            ctx.threads(),
            ctx.config().backend.name(),
            (m * k * n) as u64,
            iters,
            || {
                emu.execute_with(&ctx, &qx, &qw).expect("dimensions match");
            },
        );
        println!(
            "{:<28} {:>12.2} {:>12.2} {:>10}",
            record.name,
            record.mean_ns / 1e6,
            record.gmacs_per_s(),
            record.threads
        );
    }

    let path = std::path::Path::new("BENCH_baseline.json");
    match summary.write(path) {
        Ok(()) => println!("\nwrote {}\n", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}\n", path.display()),
    }
}

/// The serving sweep: offered load × NB-SMT configuration through the
/// `nbsmt-serve` virtual-clock scheduler, written to `BENCH_serve.json`.
fn run_serve(scale: Scale, exec: &ExecSettings, requests: usize) {
    println!("## serve — offered load × NB-SMT configuration ({requests} requests/cell)\n");
    println!("Training SynthNet and compiling dense/2T/4T sessions…\n");
    let rows = serve_sweep_with(scale, exec, requests, 2024);
    println!(
        "{:<6} {:<12} {:>8} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "SMT",
        "Arrival",
        "Offered",
        "Done",
        "Shed",
        "Thru[rps]",
        "p50[ms]",
        "p95[ms]",
        "p99[ms]",
        "Batch",
        "Depth"
    );
    for row in &rows {
        let offered = if row.arrival == "closed_loop" {
            format!("{}cl", row.offered as u64)
        } else {
            format!("{:.1}x", row.offered)
        };
        println!(
            "{:<6} {:<12} {:>8} {:>6} {:>6} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>6}",
            row.smt,
            row.arrival,
            offered,
            row.completed,
            row.rejected,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.mean_batch,
            row.max_queue_depth
        );
    }
    let path = std::path::Path::new("BENCH_serve.json");
    match serve_summary(&rows).write(path) {
        Ok(()) => println!("\nwrote {} (merged by record name)\n", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}\n", path.display()),
    }
}

/// The sharded serving sweep: replicas × route policy × {pinned dense,
/// adaptive dense→2T→4T} through the `nbsmt-serve` replica-pool simulator,
/// merged into `BENCH_serve.json`.
fn run_shard(scale: Scale, exec: &ExecSettings, requests: usize, replicas: &[usize]) {
    println!(
        "## shard — replicas × route × {{dense, adaptive}} ({requests} requests/cell, replicas {replicas:?})\n"
    );
    println!("Training SynthNet and compiling the dense/2T/4T ladder…\n");
    let rows = shard_sweep_with(scale, exec, requests, replicas, 2024);
    println!(
        "{:<4} {:<6} {:<9} {:>8} {:>6} {:>6} {:>10} {:>9} {:>9} {:>7} {:>6} {:>14}",
        "R",
        "Route",
        "Policy",
        "Offered",
        "Done",
        "Shed",
        "Thru[rps]",
        "p95[ms]",
        "p99[ms]",
        "Batch",
        "Trans",
        "Batches/mode"
    );
    for row in &rows {
        println!(
            "{:<4} {:<6} {:<9} {:>7.1}x {:>6} {:>6} {:>10.1} {:>9.2} {:>9.2} {:>7.2} {:>6} {:>14}",
            row.replicas,
            row.route,
            row.policy,
            row.offered,
            row.completed,
            row.rejected,
            row.throughput_rps,
            row.p95_ms,
            row.p99_ms,
            row.mean_batch,
            row.mode_transitions,
            format!("{:?}", row.batches_per_mode),
        );
    }
    let path = std::path::Path::new("BENCH_serve.json");
    match shard_summary(&rows).write(path) {
        Ok(()) => println!("\nwrote {} (merged by record name)\n", path.display()),
        Err(e) => eprintln!("\nfailed to write {}: {e}\n", path.display()),
    }
}

fn run_mlperf() {
    println!("## §V-B MLPerf — MobileNet-v1 operating point (pointwise @2T, depthwise @1T)\n");
    let row = mlperf_mobilenet();
    println!(
        "{}: speedup {:.2}x with {:.1}% of MACs executed at two threads\n",
        row.model,
        row.speedup,
        row.fraction_at_2t * 100.0
    );
}
