//! `repro` — regenerates every table and figure of the NB-SMT paper.
//!
//! A thin driver over [`nbsmt_bench::ExperimentRegistry`]: experiments,
//! their descriptions, defaults, and accepted parameters all live in the
//! registry, and a run is fully described by a declarative
//! [`nbsmt_bench::RunSpec`].
//!
//! ```text
//! cargo run -p nbsmt-bench --release --bin repro -- <experiment> [flags]
//! cargo run -p nbsmt-bench --release --bin repro -- --spec examples/specs/serve_small.json
//! ```
//!
//! Run `repro -- --help` for the flags and `repro -- --list` for every
//! experiment id with a one-line description. A spec file commits a run's
//! entire configuration (scale, seed, host execution, per-experiment
//! parameters); `--set key=value` and the shorthand flags (`--full`,
//! `--threads`, `--backend`, `--requests`, `--replicas`) override it, and
//! `--dump-spec` prints the resolved spec instead of running — the way to
//! check in a new spec file. Setting a parameter the experiment does not
//! declare (e.g. `--requests` on `fig8`) is a typed error, never a silent
//! no-op.
//!
//! By the execution layer's determinism contract, `threads`/`backend`
//! change wall-clock time only — every reproduced number is identical for
//! every setting. `gemmbench`, `serve`, and `shard` write the tracked
//! `BENCH_*.json` summaries and only run when requested explicitly (none is
//! part of `all`, so regenerating tables never clobbers them).

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use nbsmt_bench::{ExperimentError, ExperimentRegistry, RunSpec, SpecError, SummarySink};

/// Everything that can go wrong in the driver, funneled to the single exit
/// point in `main`.
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown flag, missing value, unknown experiment).
    Usage(String),
    /// The spec file or an override was invalid.
    Spec(SpecError),
    /// The experiment itself failed (summary write).
    Run(ExperimentError),
    /// A spec file could not be read.
    Io { path: PathBuf, message: String },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Spec(e) => write!(f, "{e}"),
            CliError::Run(e) => write!(f, "{e}"),
            CliError::Io { path, message } => {
                write!(f, "failed to read {}: {message}", path.display())
            }
        }
    }
}

impl CliError {
    /// Exit status: 2 for usage/spec problems (the caller's mistake), 1 for
    /// run failures.
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) | CliError::Spec(_) | CliError::Io { .. } => 2,
            CliError::Run(_) => 1,
        }
    }
}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<ExperimentError> for CliError {
    fn from(e: ExperimentError) -> Self {
        match e {
            // Spec problems surfaced by the registry keep the usage exit
            // code.
            ExperimentError::Spec(spec) => CliError::Spec(spec),
            other => CliError::Run(other),
        }
    }
}

/// The parsed command line, before spec resolution.
#[derive(Debug, Default)]
struct CliOptions {
    experiment: Option<String>,
    spec_path: Option<PathBuf>,
    /// `--set` pairs and shorthand flags, in command-line order.
    sets: Vec<(String, String)>,
    dump_spec: bool,
    list: bool,
    help: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        // The single error exit point: every failure funnels here as a
        // CliError.
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let registry = ExperimentRegistry::standard();
    let options = parse_args(args)?;

    if options.help {
        print!("{}", registry.help_text());
        return Ok(());
    }
    if options.list {
        print!("{}", registry.list_text());
        return Ok(());
    }

    let spec = resolve_spec(&registry, &options)?;

    // Check before dumping: `--dump-spec` doubles as the spec validator
    // (the CI spec-smoke job runs it over every committed file). Same
    // registry.check the run path applies, so the two cannot drift.
    registry.check(&spec).map_err(|e| match e {
        ExperimentError::UnknownExperiment(name) => unknown_experiment_error(&registry, &name),
        other => other.into(),
    })?;

    if options.dump_spec {
        print!("{}", spec.render());
        return Ok(());
    }

    println!(
        "# NB-SMT / SySMT reproduction — experiment: {} (scale: {:?})",
        spec.experiment, spec.scale
    );
    let ctx = spec.exec.context();
    println!(
        "host execution: {} thread(s), {} backend\n",
        ctx.threads(),
        ctx.config().backend
    );

    let mut sink = SummarySink::stdout();
    registry.run(&spec, &mut sink)?;
    Ok(())
}

/// Builds the effective [`RunSpec`]: experiment defaults ← spec file ←
/// `--set`/shorthand overrides, in that order.
fn resolve_spec(registry: &ExperimentRegistry, options: &CliOptions) -> Result<RunSpec, CliError> {
    let mut spec = match &options.spec_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            let file_spec = RunSpec::parse(&text)?;
            if let Some(requested) = &options.experiment {
                if *requested != file_spec.experiment {
                    return Err(SpecError::ExperimentMismatch {
                        spec: file_spec.experiment,
                        requested: requested.clone(),
                    }
                    .into());
                }
            }
            if !registry.contains(&file_spec.experiment) {
                return Err(unknown_experiment_error(registry, &file_spec.experiment));
            }
            // Re-parse over the experiment's own defaults: a minimal file
            // ({"experiment": "shard"}) inherits every field the file
            // doesn't mention (e.g. replicas 1,2,4) from default_spec().
            let defaults = registry
                .default_spec(&file_spec.experiment)
                .expect("checked above");
            RunSpec::parse_with_defaults(&text, defaults)?
        }
        None => {
            let name = options.experiment.as_deref().unwrap_or("all");
            registry
                .default_spec(name)
                .ok_or_else(|| unknown_experiment_error(registry, name))?
        }
    };
    for (key, value) in &options.sets {
        spec.set(key, value)?;
    }
    Ok(spec)
}

fn unknown_experiment_error(registry: &ExperimentRegistry, name: &str) -> CliError {
    CliError::Usage(format!(
        "unknown experiment '{name}'.\n\n{}\n(run with --list to see this at any time)",
        registry.list_text()
    ))
}

fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut options = CliOptions::default();
    let mut it = args.iter();
    let value_of = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => options.help = true,
            "--list" => options.list = true,
            "--dump-spec" => options.dump_spec = true,
            "--spec" => {
                options.spec_path = Some(PathBuf::from(value_of("--spec", &mut it)?));
            }
            "--set" => {
                let pair = value_of("--set", &mut it)?;
                let (key, value) = pair.split_once('=').ok_or_else(|| {
                    CliError::Usage(format!("--set expects key=value, got '{pair}'"))
                })?;
                options.sets.push((key.to_string(), value.to_string()));
            }
            // Shorthand flags: sugar over --set, applied in order.
            "--full" => options.sets.push(("scale".into(), "full".into())),
            "--threads" => {
                let value = value_of("--threads", &mut it)?;
                options.sets.push(("threads".into(), value));
            }
            "--backend" => {
                let value = value_of("--backend", &mut it)?;
                options.sets.push(("backend".into(), value));
            }
            "--requests" => {
                let value = value_of("--requests", &mut it)?;
                options.sets.push(("requests".into(), value));
            }
            "--replicas" => {
                let value = value_of("--replicas", &mut it)?;
                options.sets.push(("replicas".into(), value));
            }
            other if !other.starts_with("--") => {
                if let Some(first) = &options.experiment {
                    return Err(CliError::Usage(format!(
                        "unexpected extra experiment '{other}' after '{first}'"
                    )));
                }
                options.experiment = Some(other.to_string());
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown flag '{other}' (run with --help for usage)"
                )));
            }
        }
    }
    Ok(options)
}
