//! Bridges the NB-SMT emulation from `nbsmt-core` into the quantized model
//! executor of `nbsmt-nn`.
//!
//! The quantized executor delegates every conv/linear GEMM to a
//! [`GemmEngine`]; [`NbSmtEngine`] implements that trait with the functional
//! NB-SMT matmul, applying a per-layer thread assignment so experiments can
//! slow selected layers down (Table V, Fig. 10, MLPerf) and leave the first
//! convolution / fully connected layers at one thread as the paper does.

use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::pe::PeStats;
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_nn::quantized::GemmEngine;
use nbsmt_nn::NnError;
use nbsmt_quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Matrix;

/// Per-layer NB-SMT execution settings used by [`NbSmtEngine`].
#[derive(Debug, Clone)]
pub struct NbSmtEngineConfig {
    /// Default thread count for compute layers without an explicit override.
    pub default_threads: ThreadCount,
    /// Sharing policy.
    pub policy: SharingPolicy,
    /// Whether the statistical reordering of §IV-B is applied.
    pub reorder: bool,
    /// Explicit per-layer thread overrides, indexed by compute-layer index.
    pub per_layer_threads: Vec<Option<ThreadCount>>,
}

impl NbSmtEngineConfig {
    /// Uniform configuration: every compute layer runs with `threads`.
    pub fn uniform(threads: ThreadCount, policy: SharingPolicy, reorder: bool) -> Self {
        NbSmtEngineConfig {
            default_threads: threads,
            policy,
            reorder,
            per_layer_threads: Vec::new(),
        }
    }

    /// Sets an explicit thread count for one compute layer.
    pub fn with_layer_threads(mut self, layer: usize, threads: ThreadCount) -> Self {
        if self.per_layer_threads.len() <= layer {
            self.per_layer_threads.resize(layer + 1, None);
        }
        self.per_layer_threads[layer] = Some(threads);
        self
    }

    fn threads_for(&self, layer: usize) -> ThreadCount {
        self.per_layer_threads
            .get(layer)
            .copied()
            .flatten()
            .unwrap_or(self.default_threads)
    }
}

/// A [`GemmEngine`] that executes every layer under NB-SMT and records
/// per-layer statistics and error metrics.
#[derive(Debug, Clone)]
pub struct NbSmtEngine {
    config: NbSmtEngineConfig,
    /// Accumulated PE statistics per compute layer.
    pub layer_stats: Vec<PeStats>,
    /// Accumulated squared error and element count per compute layer against
    /// the error-free reference, used to derive the per-layer MSE the tuning
    /// pass ranks layers by.
    pub layer_sq_error: Vec<(f64, u64)>,
}

impl NbSmtEngine {
    /// Creates an engine.
    pub fn new(config: NbSmtEngineConfig) -> Self {
        NbSmtEngine {
            config,
            layer_stats: Vec::new(),
            layer_sq_error: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &NbSmtEngineConfig {
        &self.config
    }

    /// Mean squared error recorded for compute layer `layer`.
    pub fn layer_mse(&self, layer: usize) -> f64 {
        match self.layer_sq_error.get(layer) {
            Some(&(sq, n)) if n > 0 => sq / n as f64,
            _ => 0.0,
        }
    }

    /// Clears the recorded statistics (between runs).
    pub fn reset_stats(&mut self) {
        self.layer_stats.clear();
        self.layer_sq_error.clear();
    }

    fn ensure_layer(&mut self, layer: usize) {
        if self.layer_stats.len() <= layer {
            self.layer_stats.resize(layer + 1, PeStats::default());
            self.layer_sq_error.resize(layer + 1, (0.0, 0));
        }
    }
}

impl GemmEngine for NbSmtEngine {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        self.ensure_layer(layer_index);
        let threads = self.config.threads_for(layer_index);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads,
            policy: self.config.policy,
            reorder: self.config.reorder && threads.count() > 1,
        });
        let out = emu
            .execute_with(ctx, x, w)
            .map_err(nbsmt_nn::NnError::from)?;
        self.layer_stats[layer_index].merge(&out.stats);
        // Record the squared error against the error-free reference so the
        // tuning experiments can rank layers by MSE.
        let reference =
            nbsmt_core::matmul::reference_output_with(ctx, x, w).map_err(NnError::from)?;
        let mut sq = 0.0f64;
        for (a, b) in out.output.as_slice().iter().zip(reference.as_slice()) {
            let d = (*a - *b) as f64;
            sq += d * d;
        }
        let entry = &mut self.layer_sq_error[layer_index];
        entry.0 += sq;
        entry.1 += reference.as_slice().len() as u64;
        Ok(out.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsmt_nn::quantized::{QuantizedModel, ReferenceEngine};
    use nbsmt_workloads::synthnet::{generate_dataset, quick_synthnet};

    #[test]
    fn config_per_layer_overrides() {
        let cfg = NbSmtEngineConfig::uniform(ThreadCount::Four, SharingPolicy::S_A, true)
            .with_layer_threads(2, ThreadCount::Two)
            .with_layer_threads(0, ThreadCount::One);
        assert_eq!(cfg.threads_for(0), ThreadCount::One);
        assert_eq!(cfg.threads_for(1), ThreadCount::Four);
        assert_eq!(cfg.threads_for(2), ThreadCount::Two);
        assert_eq!(cfg.threads_for(99), ThreadCount::Four);
    }

    #[test]
    fn nbsmt_engine_runs_synthnet_with_small_accuracy_loss() {
        let trained = quick_synthnet(7).expect("training succeeds");
        let calib = generate_dataset(&trained.task, 4, 999);
        let (calib_images, _) = calib.batch(0, calib.len());
        let q = QuantizedModel::calibrate(&trained.model, &[calib_images]).unwrap();
        let (test_images, test_labels) = trained.test.batch(0, trained.test.len());

        let baseline_acc = q
            .accuracy_with(&test_images, &test_labels, &mut ReferenceEngine)
            .unwrap();

        let mut engine = NbSmtEngine::new(
            NbSmtEngineConfig::uniform(ThreadCount::Two, SharingPolicy::S_A, true)
                // The paper leaves the first convolution at one thread.
                .with_layer_threads(0, ThreadCount::One),
        );
        let nbsmt_acc = q
            .accuracy_with(&test_images, &test_labels, &mut engine)
            .unwrap();
        assert!(
            baseline_acc - nbsmt_acc <= 0.1,
            "2T accuracy {nbsmt_acc} dropped too far from baseline {baseline_acc}"
        );
        // Statistics were recorded for every compute layer.
        assert_eq!(engine.layer_stats.len(), q.compute_layer_count());
        assert!(engine.layer_stats.iter().all(|s| s.cycles > 0));
        // Layer MSE is available and finite.
        for l in 0..q.compute_layer_count() {
            assert!(engine.layer_mse(l).is_finite());
        }
        engine.reset_stats();
        assert!(engine.layer_stats.is_empty());
    }
}
