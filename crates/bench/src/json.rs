//! Minimal JSON value type with a stable writer and parser.
//!
//! The offline `serde` shim is derive-only (no serializer), so the benchmark
//! summaries emit JSON by hand. This module centralizes that: string
//! escaping, number formatting, pretty rendering, and a small
//! recursive-descent parser — one place instead of ad-hoc `format!` calls
//! per summary file. Both `BENCH_baseline.json` and `BENCH_serve.json` go
//! through it, and the parser is what lets summaries *merge* into an
//! existing file instead of silently overwriting it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, rendered without a trailing `.0` when
    /// integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as u64 (truncating), if this is a non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-renders with two-space indentation. Objects and arrays whose
    /// members are all scalars render on one line (the record-per-line
    /// layout of the tracked `BENCH_*.json` files); nested containers
    /// render expanded.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => out.push_str(&format_number(*v)),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let flat = match self {
            Json::Arr(items) => items.iter().all(Json::is_scalar),
            Json::Obj(fields) => fields.iter().all(|(_, v)| v.is_scalar()),
            _ => true,
        };
        if flat {
            self.render_compact(out);
            return;
        }
        let pad = "  ".repeat(depth + 1);
        match self {
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.render_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            _ => unreachable!("scalars are always flat"),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

/// Escapes a string for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a number: integral values render without a decimal point,
/// everything else uses Rust's shortest round-trip float formatting.
/// Non-finite values (JSON has no representation for them) render as `null`.
pub fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{literal}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if matches!(bytes.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number bytes"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("invalid number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed for benchmark ids;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive as
                // raw bytes in the slice).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("nonempty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if matches!(bytes.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            (
                "records",
                Json::Arr(vec![
                    Json::obj([
                        ("name", Json::str("gemm \"fast\"\\path")),
                        ("mean_ns", Json::Num(12.5)),
                        ("iters", Json::Num(3.0)),
                        ("ok", Json::Bool(true)),
                        ("note", Json::Null),
                    ]),
                    Json::obj([("name", Json::str("unicode é✓")), ("v", Json::Num(-0.25))]),
                ]),
            ),
            ("count", Json::Num(2.0)),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Scalar-only records stay on one line.
        assert!(text.lines().any(|l| l.contains("\"mean_ns\": 12.5")));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(-41.0), "-41");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(f64::NAN), "null");
        assert_eq!(format_number(f64::INFINITY), "null");
        // Round-trips through parse.
        let v = Json::parse("123456789.25").unwrap();
        assert_eq!(v.as_f64(), Some(123456789.25));
    }

    #[test]
    fn escape_control_and_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let parsed = Json::parse("\"a\\u0041\\n\"").unwrap();
        assert_eq!(parsed.as_str(), Some("aA\n"));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, 2], "b": "x", "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("123 456").is_err());
        let err = Json::parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn parses_the_legacy_baseline_layout() {
        // The exact shape PR 2's hand-rolled writer produced.
        let legacy = "{\n  \"records\": [\n    {\"name\": \"gemm_i32_256_naive_1t\", \
                      \"mean_ns\": 1234.5, \"iters\": 5, \"threads\": 1, \
                      \"backend\": \"naive\", \"mac_ops\": 16777216, \
                      \"gmacs_per_s\": 13.5919}\n  ]\n}\n";
        let doc = Json::parse(legacy).unwrap();
        let records = doc.get("records").and_then(Json::as_arr).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].get("name").and_then(Json::as_str),
            Some("gemm_i32_256_naive_1t")
        );
        assert_eq!(records[0].get("threads").and_then(Json::as_u64), Some(1));
    }
}
