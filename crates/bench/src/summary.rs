//! Machine-readable benchmark summaries.
//!
//! The `repro -- gemmbench` experiment times the GEMM backends and the
//! NB-SMT layer emulation on the host and records the results here, then
//! writes them as `BENCH_baseline.json` so the repository's performance
//! trajectory can be tracked commit over commit. The JSON is emitted by
//! hand (the offline `serde` shim has no serializer), with a stable,
//! sorted-by-insertion layout.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// One timed benchmark entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `gemm_i32_512_parallel_8t`.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Worker threads the execution context used.
    pub threads: usize,
    /// GEMM backend name (`naive`, `blocked`, `parallel`, or `-`).
    pub backend: String,
    /// Work metric per iteration (MAC operations) when meaningful, else 0.
    pub mac_ops: u64,
}

impl BenchRecord {
    /// Giga-MACs per second, or 0 when no work metric was recorded.
    pub fn gmacs_per_s(&self) -> f64 {
        if self.mean_ns <= 0.0 {
            0.0
        } else {
            self.mac_ops as f64 / self.mean_ns
        }
    }
}

/// A collection of benchmark records with a JSON writer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// The recorded entries, in insertion order.
    pub records: Vec<BenchRecord>,
}

impl BenchSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        BenchSummary::default()
    }

    /// Times `f` for `iters` iterations (after one untimed warm-up call)
    /// and records the mean, returning a reference to the new record.
    pub fn measure<F: FnMut()>(
        &mut self,
        name: &str,
        threads: usize,
        backend: &str,
        mac_ops: u64,
        iters: u64,
        mut f: F,
    ) -> &BenchRecord {
        let iters = iters.max(1);
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.records.push(BenchRecord {
            name: name.to_string(),
            mean_ns,
            iters,
            threads,
            backend: backend.to_string(),
            mac_ops,
        });
        self.records.last().expect("record just pushed")
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}, \
                 \"threads\": {}, \"backend\": \"{}\", \"mac_ops\": {}, \
                 \"gmacs_per_s\": {:.4}}}{}\n",
                escape(&r.name),
                r.mean_ns,
                r.iters,
                r.threads,
                escape(&r.backend),
                r.mac_ops,
                r.gmacs_per_s(),
                if i + 1 == self.records.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON summary to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_and_json_is_well_formed() {
        let mut summary = BenchSummary::new();
        let mut counter = 0u64;
        summary.measure("noop", 2, "parallel", 100, 3, || {
            counter += 1;
        });
        // 3 timed iterations + 1 warm-up.
        assert_eq!(counter, 4);
        assert_eq!(summary.records.len(), 1);
        let r = &summary.records[0];
        assert_eq!(r.iters, 3);
        assert_eq!(r.threads, 2);
        assert!(r.mean_ns >= 0.0);
        assert!(r.gmacs_per_s() >= 0.0);
        let json = summary.to_json();
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"backend\": \"parallel\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn write_emits_file() {
        let mut summary = BenchSummary::new();
        summary.measure("x", 1, "naive", 0, 1, || {});
        let path = std::env::temp_dir().join("nbsmt_bench_summary_test.json");
        summary.write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"records\""));
        let _ = std::fs::remove_file(&path);
    }
}
