//! Machine-readable benchmark summaries.
//!
//! Two summary files track the repository's performance trajectory commit
//! over commit: `BENCH_baseline.json` (`repro -- gemmbench`: timed GEMM
//! backends and NB-SMT layers) and `BENCH_serve.json` (`repro -- serve`:
//! serving throughput and latency per NB-SMT configuration and offered
//! load). All JSON goes through [`crate::json`] — escaping, number
//! formatting, and parsing live in one place — and writes **merge by record
//! name** into an existing file instead of silently overwriting it, so
//! re-running one experiment never discards the other experiments' records.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// One timed benchmark entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `gemm_i32_512_parallel_8t`.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Worker threads the execution context used.
    pub threads: usize,
    /// GEMM backend name (`naive`, `blocked`, `parallel`, or `-`).
    pub backend: String,
    /// Work metric per iteration (MAC operations) when meaningful, else 0.
    pub mac_ops: u64,
}

impl BenchRecord {
    /// Giga-MACs per second, or 0 when no work metric was recorded.
    pub fn gmacs_per_s(&self) -> f64 {
        if self.mean_ns <= 0.0 {
            0.0
        } else {
            self.mac_ops as f64 / self.mean_ns
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("mean_ns", Json::Num((self.mean_ns * 10.0).round() / 10.0)),
            ("iters", Json::Num(self.iters as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("backend", Json::str(&self.backend)),
            ("mac_ops", Json::Num(self.mac_ops as f64)),
            (
                "gmacs_per_s",
                Json::Num((self.gmacs_per_s() * 1e4).round() / 1e4),
            ),
        ])
    }

    fn from_json(value: &Json) -> Option<BenchRecord> {
        Some(BenchRecord {
            name: value.get("name")?.as_str()?.to_string(),
            mean_ns: value.get("mean_ns")?.as_f64()?,
            iters: value.get("iters")?.as_u64()?,
            threads: value.get("threads")?.as_u64()? as usize,
            backend: value.get("backend")?.as_str()?.to_string(),
            mac_ops: value.get("mac_ops")?.as_u64()?,
        })
    }
}

/// A collection of benchmark records with a merging JSON writer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// The recorded entries, in insertion order.
    pub records: Vec<BenchRecord>,
}

impl BenchSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        BenchSummary::default()
    }

    /// Times `f` for `iters` iterations (after one untimed warm-up call)
    /// and records the mean, returning a reference to the new record.
    pub fn measure<F: FnMut()>(
        &mut self,
        name: &str,
        threads: usize,
        backend: &str,
        mac_ops: u64,
        iters: u64,
        mut f: F,
    ) -> &BenchRecord {
        let iters = iters.max(1);
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.records.push(BenchRecord {
            name: name.to_string(),
            mean_ns,
            iters,
            threads,
            backend: backend.to_string(),
            mac_ops,
        });
        self.records.last().expect("record just pushed")
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj([(
            "records",
            Json::Arr(self.records.iter().map(BenchRecord::to_json).collect()),
        )])
        .render()
    }

    /// Parses a summary previously written by [`Self::write`]. Returns
    /// `None` when the document *or any single record* fails to convert —
    /// a partially-understood file must take the merging write's `.bak`
    /// path rather than silently losing the records we couldn't read.
    pub fn parse(text: &str) -> Option<BenchSummary> {
        let doc = Json::parse(text).ok()?;
        let records = doc
            .get("records")?
            .as_arr()?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(BenchSummary { records })
    }

    /// Writes the summary to `path`, **merging** into an existing file:
    /// records already present keep their position and are replaced when a
    /// new record shares their name; new names append. An existing file
    /// that fails to parse is preserved next to the new one as
    /// `<path>.bak` rather than silently discarded.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let merged = merge_by_name(
            read_existing(path, BenchSummary::parse)?.map(|s| s.records),
            self.records.clone(),
            |r| r.name.clone(),
        );
        let body = BenchSummary { records: merged }.to_json();
        let mut file = std::fs::File::create(path)?;
        file.write_all(body.as_bytes())
    }
}

/// One serving-sweep entry: a (session configuration, arrival process,
/// offered load) cell of the `repro serve` experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRecord {
    /// Record id, e.g. `serve_synthnet_2t_open_x2.0`.
    pub name: String,
    /// NB-SMT design point (`dense`, `2t`, `4t`).
    pub smt: String,
    /// Arrival process (`open_poisson` or `closed_loop`).
    pub arrival: String,
    /// Offered load: for open loop, the multiplier of the dense session's
    /// single-request service rate (e.g. `2.0` = twice that rate); for
    /// closed loop, the client count.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second over the run.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Mean launched batch size.
    pub mean_batch: f64,
    /// Deepest queue observed.
    pub max_queue_depth: u64,
    /// Replica count the cell ran with (1 for the unsharded sweep).
    pub replicas: u64,
    /// Route policy label (`rr`, `lo`, `hash`; `-` for the unsharded sweep).
    pub route: String,
    /// Adaptive mode switches over the run (0 for fixed design points).
    pub mode_transitions: u64,
}

impl ServeRecord {
    fn to_json(&self) -> Json {
        let r3 = |v: f64| (v * 1e3).round() / 1e3;
        Json::obj([
            ("name", Json::str(&self.name)),
            ("smt", Json::str(&self.smt)),
            ("arrival", Json::str(&self.arrival)),
            ("offered", Json::Num(r3(self.offered))),
            ("requests", Json::Num(self.requests as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("throughput_rps", Json::Num(r3(self.throughput_rps))),
            ("p50_ms", Json::Num(r3(self.p50_ms))),
            ("p95_ms", Json::Num(r3(self.p95_ms))),
            ("p99_ms", Json::Num(r3(self.p99_ms))),
            ("mean_batch", Json::Num(r3(self.mean_batch))),
            ("max_queue_depth", Json::Num(self.max_queue_depth as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("route", Json::str(&self.route)),
            ("mode_transitions", Json::Num(self.mode_transitions as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<ServeRecord> {
        Some(ServeRecord {
            name: value.get("name")?.as_str()?.to_string(),
            smt: value.get("smt")?.as_str()?.to_string(),
            arrival: value.get("arrival")?.as_str()?.to_string(),
            offered: value.get("offered")?.as_f64()?,
            requests: value.get("requests")?.as_u64()?,
            completed: value.get("completed")?.as_u64()?,
            rejected: value.get("rejected")?.as_u64()?,
            throughput_rps: value.get("throughput_rps")?.as_f64()?,
            p50_ms: value.get("p50_ms")?.as_f64()?,
            p95_ms: value.get("p95_ms")?.as_f64()?,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            mean_batch: value.get("mean_batch")?.as_f64()?,
            max_queue_depth: value.get("max_queue_depth")?.as_u64()?,
            // Sharding fields postdate the original schema: records written
            // before the shard sweep existed parse with the unsharded
            // defaults instead of failing the whole document to `.bak`.
            replicas: value.get("replicas").and_then(Json::as_u64).unwrap_or(1),
            route: value
                .get("route")
                .and_then(Json::as_str)
                .unwrap_or("-")
                .to_string(),
            mode_transitions: value
                .get("mode_transitions")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        })
    }
}

/// The `BENCH_serve.json` summary: serving records with the same
/// merge-by-name write semantics as [`BenchSummary`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// The recorded serving runs, in insertion order.
    pub runs: Vec<ServeRecord>,
}

impl ServeSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        ServeSummary::default()
    }

    /// Appends a run record.
    pub fn push(&mut self, record: ServeRecord) {
        self.runs.push(record);
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj([(
            "runs",
            Json::Arr(self.runs.iter().map(ServeRecord::to_json).collect()),
        )])
        .render()
    }

    /// Parses a summary previously written by [`Self::write`]. Like
    /// [`BenchSummary::parse`], any unconvertible record fails the whole
    /// parse so the merging write backs the file up instead of dropping it.
    pub fn parse(text: &str) -> Option<ServeSummary> {
        let doc = Json::parse(text).ok()?;
        let runs = doc
            .get("runs")?
            .as_arr()?
            .iter()
            .map(ServeRecord::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(ServeSummary { runs })
    }

    /// Writes the summary to `path` with merge-by-name semantics (see
    /// [`BenchSummary::write`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let merged = merge_by_name(
            read_existing(path, ServeSummary::parse)?.map(|s| s.runs),
            self.runs.clone(),
            |r| r.name.clone(),
        );
        let body = ServeSummary { runs: merged }.to_json();
        let mut file = std::fs::File::create(path)?;
        file.write_all(body.as_bytes())
    }
}

/// One availability-under-failure entry: a (fault schedule, execution mode,
/// design-point policy, countermeasure) cell of the `repro faults`
/// experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Record id, e.g. `faults_crash-during-drain_live_adaptive_retry+hedge_n64`.
    pub name: String,
    /// Fault schedule: a chaos-corpus name or `gen-x<intensity>`.
    pub schedule: String,
    /// `sim` (virtual clock, bit-reproducible) or `live` (threaded pool).
    pub mode: String,
    /// Design-point selection (`pinned` or `adaptive`).
    pub policy: String,
    /// Client countermeasures (`none`, `retry`, `retry+hedge`, or `-`).
    pub cm: String,
    /// Requests issued.
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Requests lost to shedding, crash cancellation, or retry exhaustion.
    pub failed: u64,
    /// completed / requests.
    pub availability: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Injected replica crashes.
    pub crashes: u64,
    /// Requests handed off from crashed replicas to survivors.
    pub handoffs: u64,
    /// Client re-submissions.
    pub retries: u64,
    /// Hedge duplicates submitted.
    pub hedges: u64,
    /// Calls won by the hedge leg.
    pub hedge_wins: u64,
}

impl FaultRecord {
    fn to_json(&self) -> Json {
        let r3 = |v: f64| (v * 1e3).round() / 1e3;
        Json::obj([
            ("name", Json::str(&self.name)),
            ("schedule", Json::str(&self.schedule)),
            ("mode", Json::str(&self.mode)),
            ("policy", Json::str(&self.policy)),
            ("cm", Json::str(&self.cm)),
            ("requests", Json::Num(self.requests as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("availability", Json::Num(r3(self.availability))),
            ("p95_ms", Json::Num(r3(self.p95_ms))),
            ("p99_ms", Json::Num(r3(self.p99_ms))),
            ("crashes", Json::Num(self.crashes as f64)),
            ("handoffs", Json::Num(self.handoffs as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("hedges", Json::Num(self.hedges as f64)),
            ("hedge_wins", Json::Num(self.hedge_wins as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<FaultRecord> {
        Some(FaultRecord {
            name: value.get("name")?.as_str()?.to_string(),
            schedule: value.get("schedule")?.as_str()?.to_string(),
            mode: value.get("mode")?.as_str()?.to_string(),
            policy: value.get("policy")?.as_str()?.to_string(),
            cm: value.get("cm")?.as_str()?.to_string(),
            requests: value.get("requests")?.as_u64()?,
            completed: value.get("completed")?.as_u64()?,
            failed: value.get("failed")?.as_u64()?,
            availability: value.get("availability")?.as_f64()?,
            p95_ms: value.get("p95_ms")?.as_f64()?,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            crashes: value.get("crashes")?.as_u64()?,
            handoffs: value.get("handoffs")?.as_u64()?,
            retries: value.get("retries")?.as_u64()?,
            hedges: value.get("hedges")?.as_u64()?,
            hedge_wins: value.get("hedge_wins")?.as_u64()?,
        })
    }
}

/// The `BENCH_faults.json` summary: availability-under-failure records with
/// the same merge-by-name write semantics as [`BenchSummary`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// The recorded fault-sweep runs, in insertion order.
    pub runs: Vec<FaultRecord>,
}

impl FaultSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        FaultSummary::default()
    }

    /// Appends a run record.
    pub fn push(&mut self, record: FaultRecord) {
        self.runs.push(record);
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj([(
            "runs",
            Json::Arr(self.runs.iter().map(FaultRecord::to_json).collect()),
        )])
        .render()
    }

    /// Parses a summary previously written by [`Self::write`]. Like
    /// [`BenchSummary::parse`], any unconvertible record fails the whole
    /// parse so the merging write backs the file up instead of dropping it.
    pub fn parse(text: &str) -> Option<FaultSummary> {
        let doc = Json::parse(text).ok()?;
        let runs = doc
            .get("runs")?
            .as_arr()?
            .iter()
            .map(FaultRecord::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(FaultSummary { runs })
    }

    /// Writes the summary to `path` with merge-by-name semantics (see
    /// [`BenchSummary::write`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let merged = merge_by_name(
            read_existing(path, FaultSummary::parse)?.map(|s| s.runs),
            self.runs.clone(),
            |r| r.name.clone(),
        );
        let body = FaultSummary { runs: merged }.to_json();
        let mut file = std::fs::File::create(path)?;
        file.write_all(body.as_bytes())
    }
}

/// One pool-controller entry: a (controller variant, traffic model, replica
/// count, offered load) cell of the `repro control` experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlRecord {
    /// Record id, e.g. `control_synthnet_mmpp_predictive-autoscale_r8_x1.5_n20000`.
    pub name: String,
    /// Controller variant (`reactive`, `predictive`, `predictive-autoscale`,
    /// `predictive-steal`).
    pub controller: String,
    /// Traffic model (`mmpp` or `diurnal`).
    pub arrival: String,
    /// Offered load as a multiple of the size-adjusted aggregate dense rate.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Allocated replica count of the pool (the autoscale ceiling).
    pub replicas: u64,
    /// Integrated live-replica time over the run [s] — the resource axis
    /// autoscaling optimizes. Uncontrolled cells charge every allocated
    /// replica for the whole makespan.
    pub replica_seconds: f64,
    /// Autoscale up events.
    pub scale_ups: u64,
    /// Autoscale down events (each reuses the drain/handoff machinery).
    pub scale_downs: u64,
    /// Predictive ladder-floor changes.
    pub predictive_shifts: u64,
    /// Work-stealing events.
    pub steals: u64,
    /// Requests moved by stealing.
    pub stolen_requests: u64,
    /// Reactive adaptive mode switches over the run.
    pub mode_transitions: u64,
}

impl ControlRecord {
    fn to_json(&self) -> Json {
        let r3 = |v: f64| (v * 1e3).round() / 1e3;
        Json::obj([
            ("name", Json::str(&self.name)),
            ("controller", Json::str(&self.controller)),
            ("arrival", Json::str(&self.arrival)),
            ("offered", Json::Num(r3(self.offered))),
            ("requests", Json::Num(self.requests as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("throughput_rps", Json::Num(r3(self.throughput_rps))),
            ("p50_ms", Json::Num(r3(self.p50_ms))),
            ("p95_ms", Json::Num(r3(self.p95_ms))),
            ("p99_ms", Json::Num(r3(self.p99_ms))),
            ("replicas", Json::Num(self.replicas as f64)),
            ("replica_seconds", Json::Num(r3(self.replica_seconds))),
            ("scale_ups", Json::Num(self.scale_ups as f64)),
            ("scale_downs", Json::Num(self.scale_downs as f64)),
            (
                "predictive_shifts",
                Json::Num(self.predictive_shifts as f64),
            ),
            ("steals", Json::Num(self.steals as f64)),
            ("stolen_requests", Json::Num(self.stolen_requests as f64)),
            ("mode_transitions", Json::Num(self.mode_transitions as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<ControlRecord> {
        Some(ControlRecord {
            name: value.get("name")?.as_str()?.to_string(),
            controller: value.get("controller")?.as_str()?.to_string(),
            arrival: value.get("arrival")?.as_str()?.to_string(),
            offered: value.get("offered")?.as_f64()?,
            requests: value.get("requests")?.as_u64()?,
            completed: value.get("completed")?.as_u64()?,
            rejected: value.get("rejected")?.as_u64()?,
            throughput_rps: value.get("throughput_rps")?.as_f64()?,
            p50_ms: value.get("p50_ms")?.as_f64()?,
            p95_ms: value.get("p95_ms")?.as_f64()?,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            replicas: value.get("replicas")?.as_u64()?,
            replica_seconds: value.get("replica_seconds")?.as_f64()?,
            scale_ups: value.get("scale_ups")?.as_u64()?,
            scale_downs: value.get("scale_downs")?.as_u64()?,
            predictive_shifts: value.get("predictive_shifts")?.as_u64()?,
            steals: value.get("steals")?.as_u64()?,
            stolen_requests: value.get("stolen_requests")?.as_u64()?,
            mode_transitions: value.get("mode_transitions")?.as_u64()?,
        })
    }
}

/// The `BENCH_control.json` summary: pool-controller records with the same
/// merge-by-name write semantics as [`BenchSummary`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlSummary {
    /// The recorded controller runs, in insertion order.
    pub runs: Vec<ControlRecord>,
}

impl ControlSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        ControlSummary::default()
    }

    /// Appends a run record.
    pub fn push(&mut self, record: ControlRecord) {
        self.runs.push(record);
    }

    /// Renders the summary as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        Json::obj([(
            "runs",
            Json::Arr(self.runs.iter().map(ControlRecord::to_json).collect()),
        )])
        .render()
    }

    /// Parses a summary previously written by [`Self::write`]. Like
    /// [`BenchSummary::parse`], any unconvertible record fails the whole
    /// parse so the merging write backs the file up instead of dropping it.
    pub fn parse(text: &str) -> Option<ControlSummary> {
        let doc = Json::parse(text).ok()?;
        let runs = doc
            .get("runs")?
            .as_arr()?
            .iter()
            .map(ControlRecord::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(ControlSummary { runs })
    }

    /// Writes the summary to `path` with merge-by-name semantics (see
    /// [`BenchSummary::write`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let merged = merge_by_name(
            read_existing(path, ControlSummary::parse)?.map(|s| s.runs),
            self.runs.clone(),
            |r| r.name.clone(),
        );
        let body = ControlSummary { runs: merged }.to_json();
        let mut file = std::fs::File::create(path)?;
        file.write_all(body.as_bytes())
    }
}

/// Reads and parses an existing summary file. A present-but-unparsable file
/// is moved aside to `<path>.bak` (returning `None`) so the caller's fresh
/// write never destroys the only copy of unknown content.
fn read_existing<T>(path: &Path, parse: impl Fn(&str) -> Option<T>) -> std::io::Result<Option<T>> {
    match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text) {
            Some(parsed) => Ok(Some(parsed)),
            None => {
                // Pick the first free backup name (`.bak`, `.bak1`, …) so a
                // repeated corrupt-file event never overwrites an earlier
                // backup.
                let mut n = 0u32;
                let backup = loop {
                    let suffix = if n == 0 {
                        ".bak".to_string()
                    } else {
                        format!(".bak{n}")
                    };
                    let mut candidate = path.as_os_str().to_owned();
                    candidate.push(&suffix);
                    let candidate = std::path::PathBuf::from(candidate);
                    if !candidate.exists() {
                        break candidate;
                    }
                    n += 1;
                };
                std::fs::rename(path, &backup)?;
                Ok(None)
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Merges `new` into `existing`: same-name records are replaced in place,
/// new names append in their own order.
fn merge_by_name<T>(existing: Option<Vec<T>>, new: Vec<T>, name: impl Fn(&T) -> String) -> Vec<T> {
    let mut merged = existing.unwrap_or_default();
    for record in new {
        let key = name(&record);
        match merged.iter().position(|r| name(r) == key) {
            Some(i) => merged[i] = record,
            None => merged.push(record),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_records_and_json_is_well_formed() {
        let mut summary = BenchSummary::new();
        let mut counter = 0u64;
        summary.measure("noop", 2, "parallel", 100, 3, || {
            counter += 1;
        });
        // 3 timed iterations + 1 warm-up.
        assert_eq!(counter, 4);
        assert_eq!(summary.records.len(), 1);
        let r = &summary.records[0];
        assert_eq!(r.iters, 3);
        assert_eq!(r.threads, 2);
        assert!(r.mean_ns >= 0.0);
        assert!(r.gmacs_per_s() >= 0.0);
        let json = summary.to_json();
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"backend\": \"parallel\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_summary_round_trips() {
        let mut summary = BenchSummary::new();
        summary.measure("a", 1, "naive", 64, 1, || {});
        summary.measure("b", 8, "parallel", 128, 1, || {});
        let parsed = BenchSummary::parse(&summary.to_json()).unwrap();
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].name, "a");
        assert_eq!(parsed.records[1].threads, 8);
        assert_eq!(parsed.records[1].mac_ops, 128);
    }

    #[test]
    fn write_merges_instead_of_overwriting() {
        let path = std::env::temp_dir().join("nbsmt_bench_summary_merge_test.json");
        let _ = std::fs::remove_file(&path);

        let mut first = BenchSummary::new();
        first.measure("keep_me", 1, "naive", 0, 1, || {});
        first.measure("replace_me", 1, "naive", 0, 1, || {});
        first.write(&path).unwrap();

        let mut second = BenchSummary::new();
        second.measure("replace_me", 4, "parallel", 0, 1, || {});
        second.measure("new_record", 2, "blocked", 0, 1, || {});
        second.write(&path).unwrap();

        let merged = BenchSummary::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let names: Vec<&str> = merged.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["keep_me", "replace_me", "new_record"]);
        assert_eq!(merged.records[1].threads, 4, "replaced in place");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unparsable_existing_file_is_backed_up() {
        let path = std::env::temp_dir().join("nbsmt_bench_summary_bak_test.json");
        let backup = std::env::temp_dir().join("nbsmt_bench_summary_bak_test.json.bak");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
        std::fs::write(&path, "this is not json").unwrap();

        let mut summary = BenchSummary::new();
        summary.measure("x", 1, "naive", 0, 1, || {});
        summary.write(&path).unwrap();

        assert_eq!(
            std::fs::read_to_string(&backup).unwrap(),
            "this is not json"
        );
        assert!(
            BenchSummary::parse(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .records
                .iter()
                .any(|r| r.name == "x")
        );

        // A second corrupt-file event backs up to `.bak1` instead of
        // destroying the first backup.
        let backup1 = std::env::temp_dir().join("nbsmt_bench_summary_bak_test.json.bak1");
        let _ = std::fs::remove_file(&backup1);
        std::fs::write(&path, "also not json").unwrap();
        summary.write(&path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&backup).unwrap(),
            "this is not json"
        );
        assert_eq!(std::fs::read_to_string(&backup1).unwrap(), "also not json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
        let _ = std::fs::remove_file(&backup1);
    }

    #[test]
    fn partially_understood_document_is_backed_up_not_truncated() {
        // Valid JSON whose second record is missing fields (schema drift):
        // parse must fail as a whole so the merging write preserves the
        // file as a backup instead of silently dropping that record.
        let body = r#"{"records": [
            {"name": "ok", "mean_ns": 1.0, "iters": 1, "threads": 1, "backend": "naive", "mac_ops": 0},
            {"name": "from_the_future", "wall_ps": 17}
        ]}"#;
        assert!(BenchSummary::parse(body).is_none());

        let path = std::env::temp_dir().join("nbsmt_bench_summary_drift_test.json");
        let backup = std::env::temp_dir().join("nbsmt_bench_summary_drift_test.json.bak");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
        std::fs::write(&path, body).unwrap();
        let mut summary = BenchSummary::new();
        summary.measure("x", 1, "naive", 0, 1, || {});
        summary.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&backup).unwrap(), body);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&backup);
    }

    fn serve_record(name: &str) -> ServeRecord {
        ServeRecord {
            name: name.to_string(),
            smt: "2t".to_string(),
            arrival: "open_poisson".to_string(),
            offered: 120.5,
            requests: 256,
            completed: 250,
            rejected: 6,
            throughput_rps: 118.2,
            p50_ms: 4.25,
            p95_ms: 9.5,
            p99_ms: 14.0,
            mean_batch: 3.2,
            max_queue_depth: 17,
            replicas: 2,
            route: "rr".to_string(),
            mode_transitions: 4,
        }
    }

    #[test]
    fn serve_records_without_shard_fields_parse_with_defaults() {
        // A record written before the shard sweep existed: the new fields
        // fall back to unsharded defaults instead of failing the document.
        let legacy = r#"{"runs": [
            {"name": "serve_old", "smt": "2t", "arrival": "open_poisson",
             "offered": 2.0, "requests": 10, "completed": 9, "rejected": 1,
             "throughput_rps": 5.0, "p50_ms": 1.0, "p95_ms": 2.0,
             "p99_ms": 3.0, "mean_batch": 2.5, "max_queue_depth": 4}
        ]}"#;
        let parsed = ServeSummary::parse(legacy).expect("legacy schema parses");
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.runs[0].replicas, 1);
        assert_eq!(parsed.runs[0].route, "-");
        assert_eq!(parsed.runs[0].mode_transitions, 0);
        // A record missing a *required* field still fails the whole parse.
        let broken = r#"{"runs": [{"name": "x", "smt": "2t"}]}"#;
        assert!(ServeSummary::parse(broken).is_none());
    }

    fn fault_record(name: &str) -> FaultRecord {
        FaultRecord {
            name: name.to_string(),
            schedule: "crash-during-drain".to_string(),
            mode: "live".to_string(),
            policy: "adaptive".to_string(),
            cm: "retry+hedge".to_string(),
            requests: 64,
            completed: 64,
            failed: 0,
            availability: 1.0,
            p95_ms: 3.125,
            p99_ms: 5.5,
            crashes: 1,
            handoffs: 3,
            retries: 4,
            hedges: 2,
            hedge_wins: 1,
        }
    }

    #[test]
    fn fault_summary_round_trips_and_merges() {
        let mut summary = FaultSummary::new();
        summary.push(fault_record("faults_a"));
        let parsed = FaultSummary::parse(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);

        let path = std::env::temp_dir().join("nbsmt_fault_summary_test.json");
        let _ = std::fs::remove_file(&path);
        summary.write(&path).unwrap();
        let mut update = FaultSummary::new();
        let mut changed = fault_record("faults_a");
        changed.completed = 63;
        changed.failed = 1;
        update.push(changed);
        update.push(fault_record("faults_b"));
        update.write(&path).unwrap();
        let merged = FaultSummary::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.runs.len(), 2);
        assert_eq!(merged.runs[0].completed, 63);
        assert_eq!(merged.runs[1].name, "faults_b");
        let _ = std::fs::remove_file(&path);
        // A record missing a required field fails the whole parse (→ .bak).
        let broken = r#"{"runs": [{"name": "x", "schedule": "s"}]}"#;
        assert!(FaultSummary::parse(broken).is_none());
    }

    fn control_record(name: &str) -> ControlRecord {
        ControlRecord {
            name: name.to_string(),
            controller: "predictive-autoscale".to_string(),
            arrival: "mmpp".to_string(),
            offered: 1.5,
            requests: 20_000,
            completed: 19_000,
            rejected: 1_000,
            throughput_rps: 512.5,
            p50_ms: 2.25,
            p95_ms: 7.0,
            p99_ms: 11.5,
            replicas: 8,
            replica_seconds: 123.456,
            scale_ups: 3,
            scale_downs: 5,
            predictive_shifts: 9,
            steals: 0,
            stolen_requests: 0,
            mode_transitions: 40,
        }
    }

    #[test]
    fn control_summary_round_trips_and_merges() {
        let mut summary = ControlSummary::new();
        summary.push(control_record("control_a"));
        let parsed = ControlSummary::parse(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);

        let path = std::env::temp_dir().join("nbsmt_control_summary_test.json");
        let _ = std::fs::remove_file(&path);
        summary.write(&path).unwrap();
        let mut update = ControlSummary::new();
        let mut changed = control_record("control_a");
        changed.scale_downs = 7;
        update.push(changed);
        update.push(control_record("control_b"));
        update.write(&path).unwrap();
        let merged = ControlSummary::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.runs.len(), 2);
        assert_eq!(merged.runs[0].scale_downs, 7);
        assert_eq!(merged.runs[1].name, "control_b");
        let _ = std::fs::remove_file(&path);
        // A record missing a required field fails the whole parse (→ .bak).
        let broken = r#"{"runs": [{"name": "x", "controller": "reactive"}]}"#;
        assert!(ControlSummary::parse(broken).is_none());
    }

    #[test]
    fn serve_summary_round_trips_and_merges() {
        let mut summary = ServeSummary::new();
        summary.push(serve_record("serve_a"));
        let parsed = ServeSummary::parse(&summary.to_json()).unwrap();
        assert_eq!(parsed, summary);

        let path = std::env::temp_dir().join("nbsmt_serve_summary_test.json");
        let _ = std::fs::remove_file(&path);
        summary.write(&path).unwrap();
        let mut update = ServeSummary::new();
        let mut changed = serve_record("serve_a");
        changed.completed = 999;
        update.push(changed);
        update.push(serve_record("serve_b"));
        update.write(&path).unwrap();
        let merged = ServeSummary::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.runs.len(), 2);
        assert_eq!(merged.runs[0].completed, 999);
        assert_eq!(merged.runs[1].name, "serve_b");
        let _ = std::fs::remove_file(&path);
    }
}
