//! The `repro serve` experiment: a serving sweep of offered load × NB-SMT
//! configuration over the `nbsmt-serve` subsystem.
//!
//! A SynthNet model is trained and registered once; sessions are compiled
//! for the dense baseline and the 2T / 4T SySMT design points. Each cell of
//! the sweep replays a seeded arrival trace through the deterministic
//! virtual-clock scheduler ([`nbsmt_serve::sim`]): model outputs are
//! computed for real on the host execution layer, while service *time*
//! comes from the integer [`ServiceModel`] in which a T-threaded SySMT
//! session retires work T× faster (§IV). The table this prints — and the
//! `BENCH_serve.json` it feeds — is therefore bit-reproducible on any
//! machine at any `--threads` setting.

use nbsmt_serve::config::{BatchPolicy, SchedulerConfig, SmtConfig};
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::sim::{simulate, ArrivalProcess, ServiceModel, SimOutcome};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::{train_synthnet, SynthTaskConfig};

use crate::loadgen::{closed_loop, open_poisson};
use crate::scale::{ExecSettings, Scale};
use crate::summary::{ServeRecord, ServeSummary};

/// One row of the serving sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRow {
    /// NB-SMT design point label (`dense`, `2t`, `4t`).
    pub smt: &'static str,
    /// Arrival model label (`open_poisson`, `closed_loop`).
    pub arrival: &'static str,
    /// Offered load: for open loop, the multiplier of the dense session's
    /// single-request service rate; for closed loop, the client count.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Mean launched batch size.
    pub mean_batch: f64,
    /// Deepest queue observed.
    pub max_queue_depth: u64,
}

impl ServeRow {
    fn from_outcome(
        smt: &'static str,
        arrival: &'static str,
        offered: f64,
        requests: u64,
        outcome: &SimOutcome,
    ) -> ServeRow {
        let m = &outcome.metrics;
        ServeRow {
            smt,
            arrival,
            offered,
            requests,
            completed: m.completed,
            rejected: m.rejected,
            throughput_rps: m.throughput_rps,
            p50_ms: m.p50_ns as f64 / 1e6,
            p95_ms: m.p95_ns as f64 / 1e6,
            p99_ms: m.p99_ns as f64 / 1e6,
            mean_batch: m.mean_batch_size,
            max_queue_depth: m.max_queue_depth as u64,
        }
    }

    /// The record id used in `BENCH_serve.json` (merge key across runs).
    /// Includes the trace length so a short smoke run (e.g. CI's
    /// `--requests 64`) merges in as its own records instead of replacing
    /// the tracked full-length baseline under the same names.
    pub fn record_name(&self) -> String {
        if self.arrival == "closed_loop" {
            format!(
                "serve_synthnet_{}_closed_{}c_n{}",
                self.smt, self.offered as u64, self.requests
            )
        } else {
            format!(
                "serve_synthnet_{}_open_x{:.1}_n{}",
                self.smt, self.offered, self.requests
            )
        }
    }
}

/// The serving sweep at the given scale and host-execution settings.
///
/// `requests` is the open-loop trace length (closed-loop cells issue the
/// same total). Returns the table rows; offered open-loop load is expressed
/// as a multiple of one dense session's single-request service rate, so the
/// sweep stresses the same relative operating points at every scale.
pub fn serve_sweep_with(
    scale: Scale,
    exec: &ExecSettings,
    requests: usize,
    seed: u64,
) -> Vec<ServeRow> {
    let task = SynthTaskConfig {
        classes: 4,
        image_size: 12,
        noise: 0.2,
    };
    let trained = train_synthnet(
        &task,
        scale.train_per_class(),
        scale.test_per_class(),
        scale.epochs(),
        seed,
    )
    .expect("SynthNet training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, seed.wrapping_add(77))
        .expect("calibration succeeds");

    let pool = 32.min(requests.max(1));
    let (inputs, _) = trained.sample_requests(pool, seed.wrapping_add(100));

    let ctx = exec.context();
    let service = ServiceModel::default();
    let scheduler = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000,
        },
        queue_capacity: 64,
    };

    let configs: [(&'static str, SmtConfig); 3] = [
        ("dense", SmtConfig::Dense),
        ("2t", SmtConfig::sysmt_2t()),
        ("4t", SmtConfig::sysmt_4t()),
    ];

    // Offered load is expressed relative to the dense session's
    // single-request service rate: 0.5× is comfortable, 2.0× only survives
    // through batching (and the faster SMT design points). Anchoring every
    // cell to the same dense rate is what makes the 2T/4T columns
    // comparable against the baseline.
    let dense_session = registry
        .compile("synthnet", SmtConfig::Dense)
        .expect("session compiles");
    let base_rate = 1e9 / service.single_ns(&dense_session) as f64;

    let mut rows = Vec::new();
    for (label, smt) in configs {
        let session = registry.compile("synthnet", smt).expect("session compiles");
        for load_x in [0.5f64, 2.0] {
            let rate = base_rate * load_x;
            let arrivals = open_poisson(seed.wrapping_add((load_x * 10.0) as u64), rate, requests);
            let outcome = run_cell(&session, &ctx, &inputs, &arrivals, scheduler, service);
            rows.push(ServeRow::from_outcome(
                label,
                "open_poisson",
                load_x,
                requests as u64,
                &outcome,
            ));
        }
    }

    // Closed loop on the 2T session: a fixed client population with think
    // time equal to one dense single-request service time.
    let session = registry
        .compile("synthnet", SmtConfig::sysmt_2t())
        .expect("session compiles");
    let think_ns = service.single_ns(&dense_session);
    for clients in [4usize, 16] {
        let arrivals = closed_loop(clients, think_ns, requests);
        let outcome = run_cell(&session, &ctx, &inputs, &arrivals, scheduler, service);
        rows.push(ServeRow::from_outcome(
            "2t",
            "closed_loop",
            clients as f64,
            requests as u64,
            &outcome,
        ));
    }
    rows
}

fn run_cell(
    session: &nbsmt_serve::session::Session,
    ctx: &nbsmt_tensor::exec::ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    scheduler: SchedulerConfig,
    service: ServiceModel,
) -> SimOutcome {
    simulate(session, ctx, inputs, arrivals, scheduler, service).expect("simulation succeeds")
}

/// Converts sweep rows into the `BENCH_serve.json` summary.
pub fn serve_summary(rows: &[ServeRow]) -> ServeSummary {
    let mut summary = ServeSummary::new();
    for row in rows {
        summary.push(ServeRecord {
            name: row.record_name(),
            smt: row.smt.to_string(),
            arrival: row.arrival.to_string(),
            offered: row.offered,
            requests: row.requests,
            completed: row.completed,
            rejected: row.rejected,
            throughput_rps: row.throughput_rps,
            p50_ms: row.p50_ms,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            mean_batch: row.mean_batch,
            max_queue_depth: row.max_queue_depth,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_grid_and_is_deterministic() {
        let exec = ExecSettings::sequential();
        let rows = serve_sweep_with(Scale::Quick, &exec, 48, 2024);
        // 3 configs × 2 open-loop loads + 2 closed-loop cells.
        assert_eq!(rows.len(), 8);
        for smt in ["dense", "2t", "4t"] {
            assert!(
                rows.iter()
                    .filter(|r| r.smt == smt && r.arrival == "open_poisson")
                    .count()
                    == 2
            );
        }
        // Every open-loop request is accounted for.
        for row in &rows {
            if row.arrival == "open_poisson" {
                assert_eq!(row.completed + row.rejected, row.requests);
            } else {
                assert_eq!(row.completed, row.requests);
            }
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
        // Identical on a re-run — the whole sweep is virtual-clocked.
        let again = serve_sweep_with(Scale::Quick, &exec, 48, 2024);
        assert_eq!(rows, again);
    }

    #[test]
    fn faster_design_points_serve_overload_better() {
        let exec = ExecSettings::sequential();
        let rows = serve_sweep_with(Scale::Quick, &exec, 64, 7);
        let cell = |smt: &str, load: f64| {
            rows.iter()
                .find(|r| r.smt == smt && r.arrival == "open_poisson" && r.offered == load)
                .expect("cell exists")
        };
        // At 2× the dense service rate, the 4T session sheds no more than
        // the dense one (it has 4× the virtual throughput).
        assert!(cell("4t", 2.0).rejected <= cell("dense", 2.0).rejected);
        // And its p99 latency is no worse.
        assert!(cell("4t", 2.0).p99_ms <= cell("dense", 2.0).p99_ms + 1e-9);
    }
}
