//! The `repro serve` experiment: a serving sweep of offered load × NB-SMT
//! configuration over the `nbsmt-serve` subsystem.
//!
//! A SynthNet model is trained and registered once; sessions are compiled
//! for the dense baseline and the 2T / 4T SySMT design points. Each cell of
//! the sweep replays a seeded arrival trace through the deterministic
//! virtual-clock scheduler ([`nbsmt_serve::sim`]): model outputs are
//! computed for real on the host execution layer, while service *time*
//! comes from the integer [`ServiceModel`] in which a T-threaded SySMT
//! session retires work T× faster (§IV). The table this prints — and the
//! `BENCH_serve.json` it feeds — is therefore bit-reproducible on any
//! machine at any `--threads` setting.

use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_serve::sim::{simulate, simulate_pool, ArrivalProcess, ServiceModel, SimOutcome};
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::{train_synthnet, SynthTaskConfig};

use crate::loadgen::{closed_loop, open_poisson};
use crate::scale::{ExecSettings, Scale};
use crate::summary::{ServeRecord, ServeSummary};

/// One row of the serving sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRow {
    /// NB-SMT design point label (`dense`, `2t`, `4t`).
    pub smt: &'static str,
    /// Arrival model label (`open_poisson`, `closed_loop`).
    pub arrival: &'static str,
    /// Offered load: for open loop, the multiplier of the dense session's
    /// single-request service rate; for closed loop, the client count.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Mean launched batch size.
    pub mean_batch: f64,
    /// Deepest queue observed.
    pub max_queue_depth: u64,
}

impl ServeRow {
    fn from_outcome(
        smt: &'static str,
        arrival: &'static str,
        offered: f64,
        requests: u64,
        outcome: &SimOutcome,
    ) -> ServeRow {
        let m = &outcome.metrics;
        ServeRow {
            smt,
            arrival,
            offered,
            requests,
            completed: m.completed,
            rejected: m.rejected,
            throughput_rps: m.throughput_rps,
            p50_ms: m.p50_ns as f64 / 1e6,
            p95_ms: m.p95_ns as f64 / 1e6,
            p99_ms: m.p99_ns as f64 / 1e6,
            mean_batch: m.mean_batch_size,
            max_queue_depth: m.max_queue_depth as u64,
        }
    }

    /// The record id used in `BENCH_serve.json` (merge key across runs).
    /// Includes the trace length so a short smoke run (e.g. CI's
    /// `--requests 64`) merges in as its own records instead of replacing
    /// the tracked full-length baseline under the same names.
    pub fn record_name(&self) -> String {
        if self.arrival == "closed_loop" {
            format!(
                "serve_synthnet_{}_closed_{}c_n{}",
                self.smt, self.offered as u64, self.requests
            )
        } else {
            format!(
                "serve_synthnet_{}_open_x{:.1}_n{}",
                self.smt, self.offered, self.requests
            )
        }
    }
}

/// The shared substrate of both serving sweeps: one trained, calibrated
/// SynthNet, the request-input pool, the virtual-clock service model, and
/// the dense session's single-request service time — the anchor every
/// offered load is expressed against. Keeping this in one place is what
/// makes the `serve` and `shard` rows of `BENCH_serve.json` comparable:
/// both sweeps stress the same model at loads relative to the same rate.
pub(crate) struct SweepFixture {
    pub(crate) registry: ModelRegistry,
    pub(crate) inputs: Vec<Tensor<f32>>,
    pub(crate) service: ServiceModel,
    /// One dense single-request service time [ns].
    pub(crate) dense_single_ns: u64,
}

impl SweepFixture {
    pub(crate) fn prepare(scale: Scale, requests: usize, seed: u64) -> SweepFixture {
        let task = SynthTaskConfig {
            classes: 4,
            image_size: 12,
            noise: 0.2,
        };
        let trained = train_synthnet(
            &task,
            scale.train_per_class(),
            scale.test_per_class(),
            scale.epochs(),
            seed,
        )
        .expect("SynthNet training succeeds");
        let mut registry = ModelRegistry::new();
        registry
            .register_synthnet("synthnet", &trained, seed.wrapping_add(77))
            .expect("calibration succeeds");
        let pool_size = 32.min(requests.max(1));
        let (inputs, _) = trained.sample_requests(pool_size, seed.wrapping_add(100));
        let service = ServiceModel::default();
        let dense_single_ns = {
            let dense = registry
                .compile("synthnet", SmtConfig::Dense)
                .expect("session compiles");
            service.single_ns(&dense)
        };
        SweepFixture {
            registry,
            inputs,
            service,
            dense_single_ns,
        }
    }

    /// One dense session's single-request service rate [requests/s].
    pub(crate) fn dense_rate_rps(&self) -> f64 {
        1e9 / self.dense_single_ns as f64
    }
}

/// The serving sweep at the given scale and host-execution settings.
///
/// `requests` is the open-loop trace length (closed-loop cells issue the
/// same total). Returns the table rows; offered open-loop load is expressed
/// as a multiple of one dense session's single-request service rate, so the
/// sweep stresses the same relative operating points at every scale.
pub fn serve_sweep_with(
    scale: Scale,
    exec: &ExecSettings,
    requests: usize,
    seed: u64,
) -> Vec<ServeRow> {
    let SweepFixture {
        registry,
        inputs,
        service,
        dense_single_ns,
    } = SweepFixture::prepare(scale, requests, seed);

    let ctx = exec.context();
    let scheduler = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000,
        },
        queue_capacity: 64,
    };

    let configs: [(&'static str, SmtConfig); 3] = [
        ("dense", SmtConfig::Dense),
        ("2t", SmtConfig::sysmt_2t()),
        ("4t", SmtConfig::sysmt_4t()),
    ];

    // Offered load is expressed relative to the dense session's
    // single-request service rate: 0.5× is comfortable, 2.0× only survives
    // through batching (and the faster SMT design points). Anchoring every
    // cell to the same dense rate is what makes the 2T/4T columns
    // comparable against the baseline.
    let base_rate = 1e9 / dense_single_ns as f64;

    let mut rows = Vec::new();
    for (label, smt) in configs {
        let session = registry.compile("synthnet", smt).expect("session compiles");
        for load_x in [0.5f64, 2.0] {
            let rate = base_rate * load_x;
            let arrivals = open_poisson(seed.wrapping_add((load_x * 10.0) as u64), rate, requests);
            let outcome = run_cell(&session, &ctx, &inputs, &arrivals, scheduler, service);
            rows.push(ServeRow::from_outcome(
                label,
                "open_poisson",
                load_x,
                requests as u64,
                &outcome,
            ));
        }
    }

    // Closed loop on the 2T session: a fixed client population with think
    // time equal to one dense single-request service time.
    let session = registry
        .compile("synthnet", SmtConfig::sysmt_2t())
        .expect("session compiles");
    let think_ns = dense_single_ns;
    for clients in [4usize, 16] {
        let arrivals = closed_loop(clients, think_ns, requests);
        let outcome = run_cell(&session, &ctx, &inputs, &arrivals, scheduler, service);
        rows.push(ServeRow::from_outcome(
            "2t",
            "closed_loop",
            clients as f64,
            requests as u64,
            &outcome,
        ));
    }
    rows
}

fn run_cell(
    session: &nbsmt_serve::session::Session,
    ctx: &nbsmt_tensor::exec::ExecContext,
    inputs: &[Tensor<f32>],
    arrivals: &ArrivalProcess,
    scheduler: SchedulerConfig,
    service: ServiceModel,
) -> SimOutcome {
    simulate(session, ctx, inputs, arrivals, scheduler, service).expect("simulation succeeds")
}

/// Converts sweep rows into the `BENCH_serve.json` summary.
pub fn serve_summary(rows: &[ServeRow]) -> ServeSummary {
    let mut summary = ServeSummary::new();
    for row in rows {
        summary.push(ServeRecord {
            name: row.record_name(),
            smt: row.smt.to_string(),
            arrival: row.arrival.to_string(),
            offered: row.offered,
            requests: row.requests,
            completed: row.completed,
            rejected: row.rejected,
            throughput_rps: row.throughput_rps,
            p50_ms: row.p50_ms,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            mean_batch: row.mean_batch,
            max_queue_depth: row.max_queue_depth,
            replicas: 1,
            route: "-".to_string(),
            mode_transitions: 0,
        });
    }
    summary
}

/// One row of the sharded serving sweep (`repro shard`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Replica count of the pool.
    pub replicas: usize,
    /// Route policy label (`rr`, `lo`, `hash`).
    pub route: &'static str,
    /// Mode-selection label: `dense` (pinned rung 0) or `adaptive`
    /// (dense → 2T → 4T ladder under the depth policy).
    pub policy: &'static str,
    /// Offered open-loop load as a multiple of the pool's *aggregate* dense
    /// service rate (replicas × one dense session's single-request rate).
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Mean launched batch size.
    pub mean_batch: f64,
    /// Deepest per-replica queue observed.
    pub max_queue_depth: u64,
    /// Adaptive mode switches over the run.
    pub mode_transitions: u64,
    /// Batches executed per ladder rung.
    pub batches_per_mode: Vec<u64>,
}

impl ShardRow {
    /// The record id used in `BENCH_serve.json` (merge key across runs).
    pub fn record_name(&self) -> String {
        format!(
            "shard_synthnet_r{}_{}_{}_x{:.1}_n{}",
            self.replicas, self.route, self.policy, self.offered, self.requests
        )
    }
}

/// The sharded serving sweep: replicas × route policy × {pinned dense,
/// adaptive dense→2T→4T}, each cell replaying a seeded open-loop Poisson
/// trace through [`simulate_pool`]. Offered load is expressed relative to
/// the pool's aggregate dense service rate, so "2.0×" stresses every
/// replica count at the same relative operating point — the sweep that
/// demonstrates the paper's trade operationally: under overload the
/// adaptive pool walks up the SMT ladder and sheds (bounded) accuracy
/// instead of requests.
pub fn shard_sweep_with(
    scale: Scale,
    exec: &ExecSettings,
    requests: usize,
    replica_counts: &[usize],
    seed: u64,
) -> Vec<ShardRow> {
    let fixture = SweepFixture::prepare(scale, requests, seed);
    let ladder = fixture
        .registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");
    let (inputs, service) = (&fixture.inputs, fixture.service);

    let ctx = exec.context();
    // Tighter per-replica queue than the unsharded sweep: the shard cells
    // are about *shedding* behaviour under overload, and a deep queue would
    // need a very long trace before admission control engages at all.
    let scheduler = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000,
        },
        queue_capacity: 16,
    };
    let base_rate = fixture.dense_rate_rps();

    // Trigger well before the queue is full: with max_batch 8 draining a
    // 16-deep queue, a post-drain depth of 4 means the queue was at 12 of
    // 16 — escalate *before* admission control starts shedding, not after.
    let adaptive = AdaptivePolicy {
        depth_high: 4,
        depth_low: 1,
        p95_high_ns: 0,
        eval_every_batches: 1,
    };
    let routes = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastOutstanding,
        RoutePolicy::Hashed,
    ];

    let mut rows = Vec::new();
    for &replicas in replica_counts {
        let replicas = replicas.max(1);
        for route in routes {
            for (policy_label, ladder_slice, policy) in [
                ("dense", &ladder[..1], AdaptivePolicy::pinned()),
                ("adaptive", &ladder[..], adaptive),
            ] {
                // 2.0× the aggregate dense rate everywhere (the overload
                // point); the comfortable 0.5× point only on round-robin —
                // it adds nothing per route policy.
                let loads: &[f64] = if route == RoutePolicy::RoundRobin {
                    &[0.5, 2.0]
                } else {
                    &[2.0]
                };
                for &load_x in loads {
                    let rate = base_rate * replicas as f64 * load_x;
                    let arrivals =
                        open_poisson(seed.wrapping_add((load_x * 10.0) as u64), rate, requests);
                    let outcome = simulate_pool(
                        ladder_slice,
                        &ctx,
                        inputs,
                        &arrivals,
                        PoolConfig {
                            replicas,
                            route,
                            scheduler,
                            adaptive: policy,
                        },
                        service,
                    )
                    .expect("pool simulation succeeds");
                    let m = &outcome.metrics;
                    rows.push(ShardRow {
                        replicas,
                        route: route.label(),
                        policy: policy_label,
                        offered: load_x,
                        requests: requests as u64,
                        completed: m.completed,
                        rejected: m.rejected,
                        throughput_rps: m.throughput_rps,
                        p50_ms: m.p50_ns as f64 / 1e6,
                        p95_ms: m.p95_ns as f64 / 1e6,
                        p99_ms: m.p99_ns as f64 / 1e6,
                        mean_batch: m.mean_batch_size,
                        max_queue_depth: m.max_queue_depth as u64,
                        mode_transitions: m.mode_transitions,
                        batches_per_mode: m.batches_per_mode.clone(),
                    });
                }
            }
        }
    }
    rows
}

/// Converts shard-sweep rows into the `BENCH_serve.json` summary (same
/// merge-by-name file as the unsharded sweep).
pub fn shard_summary(rows: &[ShardRow]) -> ServeSummary {
    let mut summary = ServeSummary::new();
    for row in rows {
        summary.push(ServeRecord {
            name: row.record_name(),
            smt: row.policy.to_string(),
            arrival: "open_poisson".to_string(),
            offered: row.offered,
            requests: row.requests,
            completed: row.completed,
            rejected: row.rejected,
            throughput_rps: row.throughput_rps,
            p50_ms: row.p50_ms,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            mean_batch: row.mean_batch,
            max_queue_depth: row.max_queue_depth,
            replicas: row.replicas as u64,
            route: row.route.to_string(),
            mode_transitions: row.mode_transitions,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_full_grid_and_is_deterministic() {
        let exec = ExecSettings::sequential();
        let rows = serve_sweep_with(Scale::Quick, &exec, 48, 2024);
        // 3 configs × 2 open-loop loads + 2 closed-loop cells.
        assert_eq!(rows.len(), 8);
        for smt in ["dense", "2t", "4t"] {
            assert!(
                rows.iter()
                    .filter(|r| r.smt == smt && r.arrival == "open_poisson")
                    .count()
                    == 2
            );
        }
        // Every open-loop request is accounted for.
        for row in &rows {
            if row.arrival == "open_poisson" {
                assert_eq!(row.completed + row.rejected, row.requests);
            } else {
                assert_eq!(row.completed, row.requests);
            }
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
        // Identical on a re-run — the whole sweep is virtual-clocked.
        let again = serve_sweep_with(Scale::Quick, &exec, 48, 2024);
        assert_eq!(rows, again);
    }

    #[test]
    fn shard_sweep_covers_the_grid_and_is_deterministic() {
        let exec = ExecSettings::sequential();
        let rows = shard_sweep_with(Scale::Quick, &exec, 48, &[1, 2], 2024);
        // Per replica count: rr × {dense, adaptive} × {0.5, 2.0} + (lo,
        // hash) × {dense, adaptive} × {2.0} = 8 cells.
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert_eq!(row.completed + row.rejected, row.requests);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
            assert!(!row.record_name().is_empty());
        }
        // Record names are unique (the merge key must not collide).
        let mut names: Vec<String> = rows.iter().map(ShardRow::record_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rows.len());
        let again = shard_sweep_with(Scale::Quick, &exec, 48, &[1, 2], 2024);
        assert_eq!(rows, again);
    }

    #[test]
    fn adaptive_pool_absorbs_overload_with_fewer_sheds_than_dense() {
        // The acceptance criterion of the sharded sweep: at 2.0× the
        // aggregate dense service rate, the adaptive ladder sheds fewer
        // requests than the dense-only pool — it trades accuracy (higher
        // rungs) for requests, on every route policy and replica count.
        let exec = ExecSettings::sequential();
        let rows = shard_sweep_with(Scale::Quick, &exec, 192, &[1, 2], 7);
        let cell = |replicas: usize, route: &str, policy: &str, load: f64| {
            rows.iter()
                .find(|r| {
                    r.replicas == replicas
                        && r.route == route
                        && r.policy == policy
                        && r.offered == load
                })
                .expect("cell exists")
        };
        for replicas in [1usize, 2] {
            for route in ["rr", "lo", "hash"] {
                let dense = cell(replicas, route, "dense", 2.0);
                let adaptive = cell(replicas, route, "adaptive", 2.0);
                assert!(
                    dense.rejected > 0,
                    "dense-only must shed at 2x ({replicas} replicas, {route})"
                );
                assert!(
                    adaptive.rejected < dense.rejected,
                    "adaptive must shed less ({replicas} replicas, {route}): {} vs {}",
                    adaptive.rejected,
                    dense.rejected
                );
                assert!(
                    adaptive.mode_transitions > 0,
                    "overload must drive mode switches ({replicas} replicas, {route})"
                );
                assert!(adaptive.batches_per_mode.iter().skip(1).sum::<u64>() > 0);
            }
        }
        // At the comfortable 0.5x point the adaptive pool stays (almost)
        // dense: no sheds either way.
        let easy = cell(2, "rr", "adaptive", 0.5);
        assert_eq!(easy.rejected, 0);
    }

    #[test]
    fn shard_summary_round_trips_records() {
        let exec = ExecSettings::sequential();
        let rows = shard_sweep_with(Scale::Quick, &exec, 32, &[2], 11);
        let summary = shard_summary(&rows);
        assert_eq!(summary.runs.len(), rows.len());
        // The writer rounds floats to 3 decimals, so one render→parse pass
        // is lossy by design; after that, the round trip must be exact.
        let parsed = ServeSummary::parse(&summary.to_json()).expect("summary parses");
        let again = ServeSummary::parse(&parsed.to_json()).expect("re-render parses");
        assert_eq!(again, parsed);
        for (a, b) in parsed.runs.iter().zip(summary.runs.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                (a.completed, a.rejected, a.mode_transitions),
                (b.completed, b.rejected, b.mode_transitions)
            );
        }
        assert!(parsed.runs.iter().all(|r| r.replicas == 2));
        assert!(parsed
            .runs
            .iter()
            .any(|r| r.smt == "adaptive" && r.route == "rr"));
    }

    #[test]
    fn faster_design_points_serve_overload_better() {
        let exec = ExecSettings::sequential();
        let rows = serve_sweep_with(Scale::Quick, &exec, 64, 7);
        let cell = |smt: &str, load: f64| {
            rows.iter()
                .find(|r| r.smt == smt && r.arrival == "open_poisson" && r.offered == load)
                .expect("cell exists")
        };
        // At 2× the dense service rate, the 4T session sheds no more than
        // the dense one (it has 4× the virtual throughput).
        assert!(cell("4t", 2.0).rejected <= cell("dense", 2.0).rejected);
        // And its p99 latency is no worse.
        assert!(cell("4t", 2.0).p99_ms <= cell("dense", 2.0).p99_ms + 1e-9);
    }
}
