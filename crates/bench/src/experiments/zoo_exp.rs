//! Zoo-model experiments: Fig. 1 (MAC utilization breakdown), Table I (model
//! inventory), Fig. 8 (per-layer MSE vs sparsity), Fig. 9 (utilization gain
//! vs sparsity), and the §V-A energy estimate.

use serde::{Deserialize, Serialize};

use nbsmt_core::matmul::{reference_output_with, NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::metrics::{analytic_utilization_gain_2t, layer_error};
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_hw::energy::{compare_energy, LayerEnergyInput};
use nbsmt_hw::table2::DesignPoint;
use nbsmt_sparsity::stats::{layer_utilization, UtilizationBreakdown};
use nbsmt_tensor::exec::ExecContext;
use nbsmt_workloads::calib::{synthesize_model, SynthesisOptions};
use nbsmt_workloads::zoo::{table1_models, ModelSpec};

use crate::scale::Scale;

/// One bar of Fig. 1: the utilization breakdown of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Model name.
    pub model: String,
    /// Fraction of MAC operations that fully utilize the 8b-8b unit.
    pub fully_utilized: f64,
    /// Fraction that only partially utilize it (an operand fits in 4 bits).
    pub partially_utilized: f64,
    /// Fraction that leave it idle (a zero operand).
    pub idle: f64,
}

/// Runs the Fig. 1 experiment: per-model MAC utilization breakdown, weighted
/// by each layer's true MAC count.
pub fn fig1_utilization(scale: Scale) -> Vec<Fig1Row> {
    let options = SynthesisOptions {
        max_rows: scale.max_rows(),
        max_cols: scale.max_cols(),
        ..SynthesisOptions::default()
    };
    table1_models()
        .iter()
        .map(|model| fig1_for_model(model, &options, scale))
        .collect()
}

fn fig1_for_model(model: &ModelSpec, options: &SynthesisOptions, scale: Scale) -> Fig1Row {
    let layers = synthesize_model(model, options);
    // Weight each layer's breakdown by its true MAC share.
    let mut idle = 0.0;
    let mut partial = 0.0;
    let mut full = 0.0;
    let mut weight_sum = 0.0;
    for layer in &layers {
        let b: UtilizationBreakdown =
            layer_utilization(&layer.activations, &layer.weights, scale.col_stride());
        let w = layer.mac_ops as f64;
        idle += b.idle_fraction() * w;
        partial += b.partial_fraction() * w;
        full += b.full_fraction() * w;
        weight_sum += w;
    }
    Fig1Row {
        model: model.name.clone(),
        fully_utilized: full / weight_sum,
        partially_utilized: partial / weight_sum,
        idle: idle / weight_sum,
    }
}

/// One row of Table I: model name and MAC counts (accuracy columns are
/// covered by the SynthNet experiments; the pretrained ImageNet accuracies
/// cannot be measured offline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Convolution MACs per image (G).
    pub conv_gmacs: f64,
    /// Fully connected MACs per image (M).
    pub fc_mmacs: f64,
}

/// Runs the Table I inventory.
pub fn table1_inventory() -> Vec<Table1Row> {
    table1_models()
        .iter()
        .map(|m| Table1Row {
            model: m.name.clone(),
            conv_gmacs: m.conv_mac_ops() as f64 / 1e9,
            fc_mmacs: m.fc_mac_ops() as f64 / 1e6,
        })
        .collect()
}

/// One point of Fig. 8: a layer's activation sparsity and its MSE under a 2T
/// SySMT, with and without reordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Layer name.
    pub layer: String,
    /// Activation sparsity of the layer.
    pub sparsity: f64,
    /// MSE without data reordering.
    pub mse_without_reorder: f64,
    /// MSE with data reordering.
    pub mse_with_reorder: f64,
}

/// Runs the Fig. 8 experiment on the GoogLeNet-proxy layers.
pub fn fig8_mse_vs_sparsity(scale: Scale) -> Vec<Fig8Point> {
    fig8_mse_vs_sparsity_with(scale, &ExecContext::sequential())
}

/// [`fig8_mse_vs_sparsity`] on an explicit execution context (the numbers
/// are identical for every context; only wall-clock time changes).
pub fn fig8_mse_vs_sparsity_with(scale: Scale, ctx: &ExecContext) -> Vec<Fig8Point> {
    let model = nbsmt_workloads::zoo::googlenet();
    let options = SynthesisOptions {
        max_rows: scale.max_rows(),
        max_cols: scale.max_cols(),
        ..SynthesisOptions::default()
    };
    let layers = synthesize_model(&model, &options);
    let mut points = Vec::new();
    for layer in layers
        .iter()
        .step_by(if scale == Scale::Quick { 6 } else { 1 })
    {
        let reference = match reference_output_with(ctx, &layer.activations, &layer.weights) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let run = |reorder: bool| {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Two,
                policy: SharingPolicy::S_A,
                reorder,
            });
            let out = emu
                .execute_with(ctx, &layer.activations, &layer.weights)
                .expect("dimensions match by construction");
            layer_error(&out.output, &reference).mse
        };
        points.push(Fig8Point {
            layer: layer.name.clone(),
            sparsity: layer.activations.sparsity(),
            mse_without_reorder: run(false),
            mse_with_reorder: run(true),
        });
    }
    points
}

/// One point of Fig. 9: a layer's activation sparsity, its measured 2T
/// utilization gain (with and without reordering), and the Eq. 8 analytic
/// value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Point {
    /// Layer name.
    pub layer: String,
    /// Activation sparsity of the layer.
    pub sparsity: f64,
    /// Measured utilization gain without reordering.
    pub gain_without_reorder: f64,
    /// Measured utilization gain with reordering.
    pub gain_with_reorder: f64,
    /// The analytic `1 + s` curve of Eq. 8.
    pub analytic_gain: f64,
}

/// Runs the Fig. 9 experiment on the GoogLeNet-proxy layers.
pub fn fig9_utilization_gain(scale: Scale) -> Vec<Fig9Point> {
    fig9_utilization_gain_with(scale, &ExecContext::sequential())
}

/// [`fig9_utilization_gain`] on an explicit execution context.
pub fn fig9_utilization_gain_with(scale: Scale, ctx: &ExecContext) -> Vec<Fig9Point> {
    let model = nbsmt_workloads::zoo::googlenet();
    let options = SynthesisOptions {
        max_rows: scale.max_rows(),
        max_cols: scale.max_cols(),
        ..SynthesisOptions::default()
    };
    let layers = synthesize_model(&model, &options);
    let mut points = Vec::new();
    for layer in layers
        .iter()
        .step_by(if scale == Scale::Quick { 6 } else { 1 })
    {
        let baseline_util = {
            let b = layer_utilization(&layer.activations, &layer.weights, scale.col_stride());
            b.busy_fraction()
        };
        if baseline_util == 0.0 {
            continue;
        }
        let run = |reorder: bool| {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Two,
                policy: SharingPolicy::S_A,
                reorder,
            });
            let out = emu
                .execute_with(ctx, &layer.activations, &layer.weights)
                .expect("dimensions match by construction");
            out.stats.utilization() / baseline_util
        };
        let sparsity = layer.activations.sparsity();
        points.push(Fig9Point {
            layer: layer.name.clone(),
            sparsity,
            gain_without_reorder: run(false),
            gain_with_reorder: run(true),
            analytic_gain: analytic_utilization_gain_2t(sparsity),
        });
    }
    points
}

/// Energy result for one model and one SySMT design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Model name.
    pub model: String,
    /// Energy saving of the 2T SySMT over the baseline array.
    pub saving_2t: f64,
    /// Energy saving of the 4T SySMT over the baseline array.
    pub saving_4t: f64,
}

/// Runs the §V-A energy estimate for every Table I model.
pub fn energy_savings(scale: Scale) -> Vec<EnergyRow> {
    energy_savings_with(scale, &ExecContext::sequential())
}

/// [`energy_savings`] on an explicit execution context.
pub fn energy_savings_with(scale: Scale, ctx: &ExecContext) -> Vec<EnergyRow> {
    let options = SynthesisOptions {
        max_rows: scale.max_rows(),
        max_cols: scale.max_cols(),
        ..SynthesisOptions::default()
    };
    table1_models()
        .iter()
        .map(|model| {
            let layers = synthesize_model(model, &options);
            let mut baseline = Vec::new();
            let mut sysmt2 = Vec::new();
            let mut sysmt4 = Vec::new();
            for layer in &layers {
                let base_util =
                    layer_utilization(&layer.activations, &layer.weights, scale.col_stride())
                        .busy_fraction();
                let util = |threads: ThreadCount| {
                    let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                        threads,
                        policy: SharingPolicy::S_A,
                        reorder: true,
                    });
                    emu.execute_with(ctx, &layer.activations, &layer.weights)
                        .map(|o| o.stats.utilization())
                        .unwrap_or(base_util)
                };
                baseline.push(LayerEnergyInput {
                    mac_ops: layer.mac_ops,
                    utilization: base_util,
                    threads: 1,
                });
                sysmt2.push(LayerEnergyInput {
                    mac_ops: layer.mac_ops,
                    utilization: util(ThreadCount::Two),
                    threads: 2,
                });
                sysmt4.push(LayerEnergyInput {
                    mac_ops: layer.mac_ops,
                    utilization: util(ThreadCount::Four),
                    threads: 4,
                });
            }
            EnergyRow {
                model: model.name.clone(),
                saving_2t: compare_energy(DesignPoint::Sysmt2T, &baseline, &sysmt2).saving(),
                saving_4t: compare_energy(DesignPoint::Sysmt4T, &baseline, &sysmt4).saving(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_breakdown_sums_to_one_and_matches_paper_shape() {
        let rows = fig1_utilization(Scale::Quick);
        assert_eq!(rows.len(), 5);
        let mut idle_sum = 0.0;
        let mut full_sum = 0.0;
        for r in &rows {
            let total = r.fully_utilized + r.partially_utilized + r.idle;
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", r.model);
            idle_sum += r.idle;
            full_sum += r.fully_utilized;
        }
        // Paper: on average ~60% idle, ~20% partial, ~10-20% full.
        let avg_idle = idle_sum / rows.len() as f64;
        let avg_full = full_sum / rows.len() as f64;
        assert!(avg_idle > 0.45 && avg_idle < 0.8, "avg idle {avg_idle}");
        assert!(avg_full < 0.4, "avg full {avg_full}");
    }

    #[test]
    fn table1_counts_are_in_paper_ballpark() {
        let rows = table1_inventory();
        assert_eq!(rows.len(), 5);
        let resnet50 = rows.iter().find(|r| r.model == "ResNet-50").unwrap();
        assert!(resnet50.conv_gmacs > 3.0 && resnet50.conv_gmacs < 5.0);
    }

    #[test]
    fn fig8_reordering_reduces_mse() {
        let points = fig8_mse_vs_sparsity(Scale::Quick);
        assert!(!points.is_empty());
        let without: f64 = points.iter().map(|p| p.mse_without_reorder).sum();
        let with: f64 = points.iter().map(|p| p.mse_with_reorder).sum();
        assert!(
            with <= without,
            "reordering should not increase total MSE: {with} vs {without}"
        );
    }

    #[test]
    fn fig9_gain_is_between_one_and_two_and_tracks_eq8() {
        let points = fig9_utilization_gain(Scale::Quick);
        assert!(!points.is_empty());
        for p in &points {
            assert!(p.gain_without_reorder >= 0.95, "{p:?}");
            assert!(p.gain_without_reorder <= 2.05, "{p:?}");
            assert!((p.analytic_gain - (1.0 + p.sparsity)).abs() < 1e-9);
        }
        // Reordering does not hurt utilization on aggregate (individual
        // subsampled layers can fluctuate slightly).
        let mean_plain: f64 =
            points.iter().map(|p| p.gain_without_reorder).sum::<f64>() / points.len() as f64;
        let mean_reorder: f64 =
            points.iter().map(|p| p.gain_with_reorder).sum::<f64>() / points.len() as f64;
        assert!(
            mean_reorder + 0.02 >= mean_plain,
            "mean gain with reorder {mean_reorder} vs without {mean_plain}"
        );
    }

    #[test]
    fn energy_savings_are_positive_and_in_band() {
        let rows = energy_savings(Scale::Quick);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.saving_2t > 0.1 && r.saving_2t < 0.6,
                "{}: 2T saving {}",
                r.model,
                r.saving_2t
            );
            assert!(
                r.saving_4t > 0.1 && r.saving_4t < 0.7,
                "{}: 4T saving {}",
                r.model,
                r.saving_4t
            );
        }
    }
}
