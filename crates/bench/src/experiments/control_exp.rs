//! The `repro control` experiment: shed-rate, tail-latency, and
//! replica-second curves for the pool-level controller variants.
//!
//! Where `scale` sweeps *what the pool is given* (traffic model × replicas ×
//! offered load), `control` sweeps *what sits above it*: the
//! [`nbsmt_serve::control::PoolController`] in four configurations —
//!
//! * `reactive` — no controller; every replica walks the ladder on its own
//!   queue-depth pressure (the `scale` baseline).
//! * `predictive` — the EWMA arrival-rate estimator forecasts utilization
//!   and raises the ladder floor *before* queues build.
//! * `predictive-autoscale` — predictive plus live-replica scaling: calm
//!   phases drain replicas down (reusing the crash-handoff machinery) and
//!   bursts bring them back, trading replica-seconds against shed rate.
//! * `predictive-steal` — predictive plus bounded deepest→shallowest work
//!   stealing, rebalancing hash-skewed queues.
//!
//! Every variant replays the *identical* seeded MMPP / diurnal trace through
//! [`simulate_pool_controlled_stats`] (the statistics-only virtual-clock
//! path), so each cell is bit-reproducible and the four variants differ only
//! in controller policy. Cells land in `BENCH_control.json` (merge-by-name),
//! and the committed file is held to the dominance criterion below:
//! `predictive-autoscale` must beat `reactive` on at least one of
//! {shed rate, p99, replica-seconds} on every traffic model at 1.5× load.

use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::control::{AutoscaleConfig, ControlConfig, PredictiveConfig, StealConfig};
use nbsmt_serve::sim::{
    simulate_pool_controlled_stats, simulate_pool_stats, ArrivalProcess, PoolSimOutcome,
    ServiceModel,
};

use crate::experiments::serve_exp::SweepFixture;
use crate::loadgen::{diurnal, mmpp, pareto_sizes};
use crate::scale::Scale;
use crate::summary::{ControlRecord, ControlSummary};

/// The offered-load grid every (arrival × variant × replicas) curve samples.
/// The 1.5× overload point is where the dominance criterion is judged.
pub const LOAD_GRID: [f64; 2] = [1.0, 1.5];

/// The traffic models the controller sweep covers, in presentation order.
/// (Poisson is deliberately absent: a memoryless constant-rate stream gives
/// the estimator nothing to forecast; the bursty models are the regime the
/// controller exists for.)
pub const ARRIVALS: [&str; 2] = ["mmpp", "diurnal"];

/// The controller variants, in presentation order.
pub const VARIANTS: [&str; 4] = [
    "reactive",
    "predictive",
    "predictive-autoscale",
    "predictive-steal",
];

/// Knobs of the controller sweep beyond the universal scale/seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlKnobs {
    /// Traffic-model filter: `mmpp`, `diurnal`, or `all`.
    pub arrival: String,
}

/// One cell of the controller sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlRow {
    /// Traffic-model label (`mmpp`, `diurnal`).
    pub arrival: &'static str,
    /// Controller-variant label (one of [`VARIANTS`]).
    pub variant: &'static str,
    /// Allocated replica count of the pool (the autoscale ceiling).
    pub replicas: usize,
    /// Offered load as a multiple of the size-adjusted aggregate dense rate.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Integrated live-replica time over the run [s].
    pub replica_seconds: f64,
    /// Autoscale up events.
    pub scale_ups: u64,
    /// Autoscale down events.
    pub scale_downs: u64,
    /// Predictive ladder-floor changes.
    pub predictive_shifts: u64,
    /// Work-stealing events.
    pub steals: u64,
    /// Requests moved by stealing.
    pub stolen_requests: u64,
    /// Reactive adaptive mode switches over the run.
    pub mode_transitions: u64,
}

impl ControlRow {
    fn from_outcome(
        arrival: &'static str,
        variant: &'static str,
        replicas: usize,
        offered: f64,
        requests: u64,
        outcome: &PoolSimOutcome,
    ) -> ControlRow {
        let m = &outcome.metrics;
        ControlRow {
            arrival,
            variant,
            replicas,
            offered,
            requests,
            completed: m.completed,
            rejected: m.rejected,
            throughput_rps: m.throughput_rps,
            p50_ms: m.p50_ns as f64 / 1e6,
            p95_ms: m.p95_ns as f64 / 1e6,
            p99_ms: m.p99_ns as f64 / 1e6,
            replica_seconds: outcome.replica_ns as f64 / 1e9,
            scale_ups: m.scale_ups,
            scale_downs: m.scale_downs,
            predictive_shifts: m.predictive_shifts,
            steals: m.steals,
            stolen_requests: m.stolen_requests,
            mode_transitions: m.mode_transitions,
        }
    }

    /// Shed fraction of the offered trace.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.rejected as f64 / self.requests as f64
        }
    }

    /// The record id used in `BENCH_control.json` (merge key across runs).
    /// Includes the trace length so a CI smoke run merges in beside the
    /// tracked full-length curves instead of replacing them.
    pub fn record_name(&self) -> String {
        format!(
            "control_synthnet_{}_{}_r{}_x{:.1}_n{}",
            self.arrival, self.variant, self.replicas, self.offered, self.requests
        )
    }
}

/// The seeded arrival trace for one cell: `n` arrivals at a long-run mean of
/// `rate_rps`, shaped by `arrival` — the same MMPP/diurnal construction the
/// scale sweep uses, so the two summaries stress comparable regimes.
fn arrivals_for(arrival: &str, seed: u64, rate_rps: f64, n: u64) -> ArrivalProcess {
    match arrival {
        "mmpp" => {
            let burst_rps = rate_rps * 2.5;
            let mean_burst_ns = ((64.0 / burst_rps) * 1e9).max(1.0) as u64;
            mmpp(
                seed,
                rate_rps * 0.5,
                burst_rps,
                mean_burst_ns.saturating_mul(3),
                mean_burst_ns,
                n,
            )
        }
        "diurnal" => {
            let period_ns = ((n as f64 / rate_rps) * 1e9 / 4.0).max(1.0) as u64;
            diurnal(seed, rate_rps * 0.5, rate_rps * 1.5, period_ns, n)
        }
        other => panic!("unknown traffic model '{other}'"),
    }
}

/// The [`ControlConfig`] for one (variant, replicas, rate) cell, or `None`
/// for the uncontrolled reactive baseline. The estimator window spans ~32
/// mean inter-arrivals so an MMPP burst (≈64 requests) moves the forecast
/// within a burst, not one burst late.
fn control_for(variant: &str, replicas: usize, rate_rps: f64) -> Option<ControlConfig> {
    if variant == "reactive" {
        return None;
    }
    let window_ns = (((32.0 / rate_rps) * 1e9).max(1.0) as u64).max(1);
    let predictive = Some(PredictiveConfig {
        util_high_x1024: 600,
        util_low_x1024: 200,
    });
    let autoscale = (variant == "predictive-autoscale").then(|| AutoscaleConfig {
        min_replicas: (replicas / 4).max(1),
        max_replicas: replicas,
        util_high_x1024: 700,
        util_low_x1024: 350,
    });
    let steal = (variant == "predictive-steal").then_some(StealConfig {
        imbalance_threshold: 4,
        max_steal: 4,
    });
    Some(ControlConfig {
        alpha_x1024: 512,
        window_ns,
        predictive,
        autoscale,
        steal,
    })
}

/// The controller sweep: traffic model × [`VARIANTS`] × replicas ×
/// [`LOAD_GRID`], every variant over the *identical* seeded trace per
/// (arrival, replicas, load) group. Deterministic per
/// `(scale, requests, replica_counts, seed, knobs)`.
pub fn control_sweep_with(
    scale: Scale,
    requests: usize,
    replica_counts: &[usize],
    seed: u64,
    knobs: &ControlKnobs,
) -> Vec<ControlRow> {
    let fixture = SweepFixture::prepare(scale, requests, seed);
    let ladder = fixture
        .registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");
    // The same heavy-tailed request-size model as the scale sweep's
    // defaults, and the same size-adjusted aggregate-rate anchor, so a 1.5×
    // cell here saturates the pool at the same operating point as there.
    let size = pareto_sizes(seed.wrapping_add(1000), 1536, 1024, 8192);
    let service = ServiceModel {
        size,
        ..fixture.service
    };
    let mean_size_x1024 = ((0..4096u64)
        .map(|k| size.size_x1024(k) as u128)
        .sum::<u128>()
        / 4096)
        .max(1) as f64;
    let base_rate = fixture.dense_rate_rps() * 1024.0 / mean_size_x1024;

    let scheduler = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000,
        },
        queue_capacity: 16,
    };
    let adaptive = AdaptivePolicy {
        depth_high: 4,
        depth_low: 1,
        p95_high_ns: 0,
        eval_every_batches: 1,
    };
    let selected: Vec<&'static str> = ARRIVALS
        .iter()
        .copied()
        .filter(|a| knobs.arrival == "all" || knobs.arrival == *a)
        .collect();

    let mut rows = Vec::new();
    for &arrival in &selected {
        for &replicas in replica_counts {
            let replicas = replicas.max(1);
            for load_x in LOAD_GRID {
                let rate = base_rate * replicas as f64 * load_x;
                let cell_seed = seed
                    .wrapping_add((load_x * 10.0) as u64)
                    .wrapping_add(requests as u64)
                    .wrapping_mul(replicas as u64 | 1);
                for variant in VARIANTS {
                    // The same seeded trace for every variant of the cell:
                    // the four rows differ in controller policy only.
                    let arrivals = arrivals_for(arrival, cell_seed, rate, requests as u64);
                    let pool = PoolConfig {
                        replicas,
                        route: RoutePolicy::Hashed,
                        scheduler,
                        adaptive,
                    };
                    let outcome = match control_for(variant, replicas, rate) {
                        Some(control) => simulate_pool_controlled_stats(
                            &ladder[..],
                            &fixture.inputs,
                            &arrivals,
                            pool,
                            service,
                            control,
                            None,
                            None,
                        ),
                        None => simulate_pool_stats(
                            &ladder[..],
                            &fixture.inputs,
                            &arrivals,
                            pool,
                            service,
                            None,
                            None,
                        ),
                    }
                    .expect("pool simulation succeeds");
                    rows.push(ControlRow::from_outcome(
                        arrival,
                        variant,
                        replicas,
                        load_x,
                        requests as u64,
                        &outcome,
                    ));
                }
            }
        }
    }
    rows
}

/// Whether `candidate` dominates `baseline` on at least one of the three
/// axes the controller optimizes: shed rate, p99 latency, replica-seconds.
/// (A small relative margin keeps rounding noise from counting as a win.)
pub fn dominates_on_one_axis(candidate: &ControlRow, baseline: &ControlRow) -> bool {
    let better = |c: f64, b: f64| c < b * 0.999;
    better(candidate.shed_rate(), baseline.shed_rate())
        || better(candidate.p99_ms, baseline.p99_ms)
        || better(candidate.replica_seconds, baseline.replica_seconds)
}

/// Converts controller-sweep rows into the `BENCH_control.json` summary.
pub fn control_summary(rows: &[ControlRow]) -> ControlSummary {
    let mut summary = ControlSummary::new();
    for row in rows {
        summary.push(ControlRecord {
            name: row.record_name(),
            controller: row.variant.to_string(),
            arrival: row.arrival.to_string(),
            offered: row.offered,
            requests: row.requests,
            completed: row.completed,
            rejected: row.rejected,
            throughput_rps: row.throughput_rps,
            p50_ms: row.p50_ms,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            replicas: row.replicas as u64,
            replica_seconds: row.replica_seconds,
            scale_ups: row.scale_ups,
            scale_downs: row.scale_downs,
            predictive_shifts: row.predictive_shifts,
            steals: row.steals,
            stolen_requests: row.stolen_requests,
            mode_transitions: row.mode_transitions,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> ControlKnobs {
        ControlKnobs {
            arrival: "all".to_string(),
        }
    }

    fn cell<'a>(
        rows: &'a [ControlRow],
        arrival: &str,
        variant: &str,
        offered: f64,
    ) -> &'a ControlRow {
        rows.iter()
            .find(|r| r.arrival == arrival && r.variant == variant && r.offered == offered)
            .expect("cell exists")
    }

    #[test]
    fn sweep_covers_the_grid_and_is_deterministic() {
        let rows = control_sweep_with(Scale::Quick, 96, &[2], 2024, &knobs());
        // 2 arrivals × 2 loads × 4 variants × 1 replica count.
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert_eq!(row.completed + row.rejected, row.requests);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
            assert!(row.replica_seconds > 0.0);
        }
        // Record names are unique (the merge key must not collide).
        let mut names: Vec<String> = rows.iter().map(ControlRow::record_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rows.len());
        let again = control_sweep_with(Scale::Quick, 96, &[2], 2024, &knobs());
        assert_eq!(rows, again);
    }

    #[test]
    fn arrival_filter_restricts_the_grid() {
        let mut only = knobs();
        only.arrival = "diurnal".to_string();
        let rows = control_sweep_with(Scale::Quick, 64, &[2], 7, &only);
        // 1 arrival × 2 loads × 4 variants.
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.arrival == "diurnal"));
    }

    #[test]
    fn controllers_intervene_and_autoscale_dominates_reactive() {
        let rows = control_sweep_with(Scale::Quick, 2_000, &[4], 2024, &knobs());
        for arrival in ARRIVALS {
            // The predictive floor moves on bursty traffic…
            assert!(
                cell(&rows, arrival, "predictive", 1.5).predictive_shifts > 0,
                "{arrival}: predictive floor never moved"
            );
            // …autoscaling actually scales…
            let auto = cell(&rows, arrival, "predictive-autoscale", 1.5);
            assert!(
                auto.scale_ups + auto.scale_downs > 0,
                "{arrival}: autoscaler never intervened"
            );
            // …and the uncontrolled baseline charges every allocated
            // replica for the whole makespan, so the autoscaled cell can
            // only match or undercut it on replica-seconds.
            let reactive = cell(&rows, arrival, "reactive", 1.5);
            assert!(auto.replica_seconds <= reactive.replica_seconds * 1.001);
            // The acceptance criterion on the committed curves.
            assert!(
                dominates_on_one_axis(auto, reactive),
                "{arrival}: predictive-autoscale must beat reactive on one \
                 of shed/p99/replica-seconds (auto: shed {:.4} p99 {:.3} rs {:.3}; \
                 reactive: shed {:.4} p99 {:.3} rs {:.3})",
                auto.shed_rate(),
                auto.p99_ms,
                auto.replica_seconds,
                reactive.shed_rate(),
                reactive.p99_ms,
                reactive.replica_seconds,
            );
        }
        // The steal variant moves work when hashing skews queues.
        let stole: u64 = rows
            .iter()
            .filter(|r| r.variant == "predictive-steal")
            .map(|r| r.stolen_requests)
            .sum();
        assert!(stole > 0, "stealing never rebalanced a queue");
    }

    #[test]
    fn control_summary_round_trips_records() {
        let mut only = knobs();
        only.arrival = "mmpp".to_string();
        let rows = control_sweep_with(Scale::Quick, 48, &[2], 13, &only);
        let summary = control_summary(&rows);
        assert_eq!(summary.runs.len(), rows.len());
        let parsed = ControlSummary::parse(&summary.to_json()).expect("summary parses");
        let again = ControlSummary::parse(&parsed.to_json()).expect("re-render parses");
        assert_eq!(again, parsed);
        assert!(parsed
            .runs
            .iter()
            .all(|r| r.name.starts_with("control_synthnet_mmpp_")));
    }
}
