//! The `repro scale` experiment: shed-rate and latency curves vs offered
//! load across traffic models, replica counts, and mode policies.
//!
//! Where `serve`/`shard` measure a few hundred real-inference requests,
//! `scale` is the *regime* sweep: lazily generated traffic (Poisson, bursty
//! MMPP, a diurnal envelope) with heavy-tailed bounded-Pareto request sizes,
//! replayed through [`simulate_pool_stats`] — the statistics-only simulator
//! path that skips model execution, so a cell of 10^6 requests runs in
//! seconds under strictly constant memory (every unbounded collection in
//! the outcome is capped; see `nbsmt_serve::config`). Offered load is
//! expressed relative to the pool's *size-adjusted* aggregate dense rate:
//! the dense single-request rate divided by the mean Pareto request size,
//! times the replica count — so `1.0×` saturates every grid point at the
//! same relative operating point regardless of replica count or tail shape.
//!
//! Every cell lands in `BENCH_scale.json` (merge-by-name, like every other
//! summary file), forming shed/p50/p95/p99-vs-load curves per (traffic
//! model × policy × replicas) group, plus one million-request anchor cell
//! (MMPP × adaptive × the largest replica count) that pins the
//! constant-memory regime in the committed baseline.

use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::sim::{simulate_pool_stats, ArrivalProcess, PoolSimOutcome, ServiceModel};

use crate::experiments::serve_exp::SweepFixture;
use crate::loadgen::{diurnal, lazy_poisson, mmpp, pareto_sizes};
use crate::scale::Scale;
use crate::summary::{ServeRecord, ServeSummary};

/// Requests in the million-request anchor cell.
pub const ANCHOR_REQUESTS: u64 = 1_000_000;

/// The offered-load grid every (arrival × policy × replicas) curve samples.
pub const LOAD_GRID: [f64; 3] = [0.6, 1.0, 1.5];

/// The traffic models the sweep covers, in presentation order.
pub const ARRIVALS: [&str; 3] = ["poisson", "mmpp", "diurnal"];

/// Knobs of the scale sweep beyond the universal scale/seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleKnobs {
    /// Traffic-model filter: `poisson`, `mmpp`, `diurnal`, or `all`.
    pub arrival: String,
    /// Bounded-Pareto request-size shape, x1024.
    pub size_alpha_x1024: u64,
    /// Smallest request size, x1024.
    pub size_min_x1024: u64,
    /// Largest request size, x1024.
    pub size_max_x1024: u64,
    /// Length of the anchor cell ([`ANCHOR_REQUESTS`] in the registry;
    /// tests shrink it so the quick suites stay quick).
    pub anchor_requests: u64,
}

/// One cell of the scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Traffic-model label (`poisson`, `mmpp`, `diurnal`).
    pub arrival: &'static str,
    /// Mode-selection label (`dense` pinned, or `adaptive`).
    pub policy: &'static str,
    /// Replica count of the pool.
    pub replicas: usize,
    /// Offered load as a multiple of the size-adjusted aggregate dense rate.
    pub offered: f64,
    /// Requests issued.
    pub requests: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Completed requests per second of virtual time.
    pub throughput_rps: f64,
    /// Median latency [ms].
    pub p50_ms: f64,
    /// 95th-percentile latency [ms].
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Mean launched batch size.
    pub mean_batch: f64,
    /// Deepest per-replica queue observed.
    pub max_queue_depth: u64,
    /// Adaptive mode switches over the run.
    pub mode_transitions: u64,
}

impl ScaleRow {
    fn from_outcome(
        arrival: &'static str,
        policy: &'static str,
        replicas: usize,
        offered: f64,
        requests: u64,
        outcome: &PoolSimOutcome,
    ) -> ScaleRow {
        let m = &outcome.metrics;
        ScaleRow {
            arrival,
            policy,
            replicas,
            offered,
            requests,
            completed: m.completed,
            rejected: m.rejected,
            throughput_rps: m.throughput_rps,
            p50_ms: m.p50_ns as f64 / 1e6,
            p95_ms: m.p95_ns as f64 / 1e6,
            p99_ms: m.p99_ns as f64 / 1e6,
            mean_batch: m.mean_batch_size,
            max_queue_depth: m.max_queue_depth as u64,
            mode_transitions: m.mode_transitions,
        }
    }

    /// The record id used in `BENCH_scale.json` (merge key across runs).
    /// Includes the trace length so a CI smoke run at a few thousand
    /// requests merges in beside the tracked full-length curves instead of
    /// replacing them.
    pub fn record_name(&self) -> String {
        format!(
            "scale_synthnet_{}_{}_r{}_x{:.1}_n{}",
            self.arrival, self.policy, self.replicas, self.offered, self.requests
        )
    }
}

/// Builds the lazily generated [`ArrivalProcess`] for one cell: `n`
/// arrivals at a long-run mean of `rate_rps`, shaped by `arrival`.
///
/// * `mmpp` — calm at 0.5× / burst at 2.5× the target, with the calm
///   sojourn 3× the burst sojourn, so the long-run mean is exactly 1.0×
///   and a mean burst spans ~64 requests.
/// * `diurnal` — triangle envelope from 0.5× to 1.5× the target (mean
///   1.0×), with four "days" per trace.
fn arrivals_for(arrival: &str, seed: u64, rate_rps: f64, n: u64) -> ArrivalProcess {
    match arrival {
        "poisson" => lazy_poisson(seed, rate_rps, n),
        "mmpp" => {
            let burst_rps = rate_rps * 2.5;
            let mean_burst_ns = ((64.0 / burst_rps) * 1e9).max(1.0) as u64;
            mmpp(
                seed,
                rate_rps * 0.5,
                burst_rps,
                mean_burst_ns.saturating_mul(3),
                mean_burst_ns,
                n,
            )
        }
        "diurnal" => {
            let period_ns = ((n as f64 / rate_rps) * 1e9 / 4.0).max(1.0) as u64;
            diurnal(seed, rate_rps * 0.5, rate_rps * 1.5, period_ns, n)
        }
        other => panic!("unknown traffic model '{other}'"),
    }
}

/// The scale-regime sweep: traffic model × {dense, adaptive} × replicas ×
/// [`LOAD_GRID`], all through the statistics-only pool simulator, plus a
/// `knobs.anchor_requests`-long anchor cell ([`ANCHOR_REQUESTS`] from the
/// registry) when `mmpp` is selected. Deterministic per
/// `(scale, requests, replicas, seed, knobs)`.
pub fn scale_sweep_with(
    scale: Scale,
    requests: usize,
    replica_counts: &[usize],
    seed: u64,
    knobs: &ScaleKnobs,
) -> Vec<ScaleRow> {
    let fixture = SweepFixture::prepare(scale, requests, seed);
    let ladder = fixture
        .registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");
    let size = pareto_sizes(
        seed.wrapping_add(1000),
        knobs.size_alpha_x1024,
        knobs.size_min_x1024,
        knobs.size_max_x1024,
    );
    let service = ServiceModel {
        size,
        ..fixture.service
    };
    // The offered-load anchor: one dense session's single-request rate,
    // deflated by the mean Pareto request size (estimated over a fixed key
    // range — sizes are a pure function of (seed, key), so this is exact
    // for the keys the trace actually uses and deterministic everywhere).
    let mean_size_x1024 = ((0..4096u64)
        .map(|k| size.size_x1024(k) as u128)
        .sum::<u128>()
        / 4096)
        .max(1) as f64;
    let base_rate = fixture.dense_rate_rps() * 1024.0 / mean_size_x1024;

    // Same shedding-focused scheduler and escalation policy as the shard
    // sweep, so the two summaries describe the same pool at different
    // scales.
    let scheduler = SchedulerConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_ns: 2_000_000,
        },
        queue_capacity: 16,
    };
    let adaptive = AdaptivePolicy {
        depth_high: 4,
        depth_low: 1,
        p95_high_ns: 0,
        eval_every_batches: 1,
    };
    let selected: Vec<&'static str> = ARRIVALS
        .iter()
        .copied()
        .filter(|a| knobs.arrival == "all" || knobs.arrival == *a)
        .collect();

    let mut rows = Vec::new();
    let mut run_cell =
        |arrival: &'static str, policy_label, replicas: usize, load_x: f64, n: u64| {
            let (ladder_slice, policy) = match policy_label {
                "dense" => (&ladder[..1], AdaptivePolicy::pinned()),
                _ => (&ladder[..], adaptive),
            };
            let rate = base_rate * replicas as f64 * load_x;
            let cell_seed = seed
                .wrapping_add((load_x * 10.0) as u64)
                .wrapping_add(n)
                .wrapping_mul(replicas as u64 | 1);
            let arrivals = arrivals_for(arrival, cell_seed, rate, n);
            let outcome = simulate_pool_stats(
                ladder_slice,
                &fixture.inputs,
                &arrivals,
                PoolConfig {
                    replicas,
                    route: RoutePolicy::Hashed,
                    scheduler,
                    adaptive: policy,
                },
                service,
                None,
                None,
            )
            .expect("pool simulation succeeds");
            rows.push(ScaleRow::from_outcome(
                arrival,
                policy_label,
                replicas,
                load_x,
                n,
                &outcome,
            ));
        };

    for &arrival in &selected {
        for &replicas in replica_counts {
            let replicas = replicas.max(1);
            for policy_label in ["dense", "adaptive"] {
                for load_x in LOAD_GRID {
                    run_cell(arrival, policy_label, replicas, load_x, requests as u64);
                }
            }
        }
    }
    // The million-request anchor: the burstiest model on the adaptive
    // ladder at the largest replica count, at the knee of the load grid.
    if selected.contains(&"mmpp") && knobs.anchor_requests > 0 {
        let replicas = replica_counts.iter().copied().max().unwrap_or(1).max(1);
        run_cell("mmpp", "adaptive", replicas, 1.0, knobs.anchor_requests);
    }
    rows
}

/// Converts scale-sweep rows into the `BENCH_scale.json` summary (the same
/// [`ServeSummary`] schema as `BENCH_serve.json`, in its own file so the
/// regime curves never crowd the real-inference records).
pub fn scale_summary(rows: &[ScaleRow]) -> ServeSummary {
    let mut summary = ServeSummary::new();
    for row in rows {
        summary.push(ServeRecord {
            name: row.record_name(),
            smt: row.policy.to_string(),
            arrival: row.arrival.to_string(),
            offered: row.offered,
            requests: row.requests,
            completed: row.completed,
            rejected: row.rejected,
            throughput_rps: row.throughput_rps,
            p50_ms: row.p50_ms,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            mean_batch: row.mean_batch,
            max_queue_depth: row.max_queue_depth,
            replicas: row.replicas as u64,
            route: "hash".to_string(),
            mode_transitions: row.mode_transitions,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> ScaleKnobs {
        ScaleKnobs {
            arrival: "all".to_string(),
            size_alpha_x1024: 1536,
            size_min_x1024: 1024,
            size_max_x1024: 8192,
            anchor_requests: 2_000,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_is_deterministic() {
        let rows = scale_sweep_with(Scale::Quick, 96, &[2], 2024, &knobs());
        // 3 arrivals × 2 policies × 1 replica count × 3 loads + the anchor.
        assert_eq!(rows.len(), 19);
        for row in &rows {
            assert_eq!(row.completed + row.rejected, row.requests);
            assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        }
        let anchor = rows.last().expect("anchor is last");
        assert_eq!(
            (anchor.arrival, anchor.policy, anchor.requests),
            ("mmpp", "adaptive", 2_000)
        );
        // Record names are unique (the merge key must not collide).
        let mut names: Vec<String> = rows.iter().map(ScaleRow::record_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rows.len());
        let again = scale_sweep_with(Scale::Quick, 96, &[2], 2024, &knobs());
        assert_eq!(rows, again);
    }

    #[test]
    fn arrival_filter_restricts_the_grid() {
        let mut only = knobs();
        only.arrival = "diurnal".to_string();
        let rows = scale_sweep_with(Scale::Quick, 64, &[2], 7, &only);
        // 1 arrival × 2 policies × 3 loads, and no mmpp anchor.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.arrival == "diurnal"));
    }

    #[test]
    fn shed_rate_grows_with_offered_load() {
        let rows = scale_sweep_with(Scale::Quick, 512, &[2], 11, &knobs());
        for arrival in ARRIVALS {
            for policy in ["dense", "adaptive"] {
                let shed = |load: f64| {
                    rows.iter()
                        .find(|r| {
                            r.arrival == arrival
                                && r.policy == policy
                                && r.offered == load
                                && r.requests == 512
                        })
                        .expect("cell exists")
                        .rejected
                };
                assert!(
                    shed(0.6) <= shed(1.5),
                    "{arrival}/{policy}: shed must not fall as load grows"
                );
            }
        }
        // At the overload point the adaptive ladder sheds no more than the
        // pinned-dense pool on every traffic model.
        for arrival in ARRIVALS {
            let cell = |policy: &str| {
                rows.iter()
                    .find(|r| {
                        r.arrival == arrival
                            && r.policy == policy
                            && r.offered == 1.5
                            && r.requests == 512
                    })
                    .expect("cell exists")
            };
            assert!(
                cell("adaptive").rejected <= cell("dense").rejected,
                "{arrival}: adaptive must not shed more than dense"
            );
        }
    }

    #[test]
    fn scale_summary_round_trips_records() {
        let mut only = knobs();
        only.arrival = "poisson".to_string();
        let rows = scale_sweep_with(Scale::Quick, 48, &[2], 13, &only);
        let summary = scale_summary(&rows);
        assert_eq!(summary.runs.len(), rows.len());
        let parsed = ServeSummary::parse(&summary.to_json()).expect("summary parses");
        let again = ServeSummary::parse(&parsed.to_json()).expect("re-render parses");
        assert_eq!(again, parsed);
        assert!(parsed.runs.iter().all(|r| r.route == "hash"));
        assert!(parsed
            .runs
            .iter()
            .all(|r| r.name.starts_with("scale_synthnet_poisson_")));
    }
}
