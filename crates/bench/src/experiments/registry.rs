//! The experiment registry: every paper table, figure, and serving sweep as
//! a first-class [`Experiment`] behind one trait.
//!
//! Each experiment declares its `name()`, an [`ExperimentInfo`] (description,
//! accepted [`ParamKey`]s, which summary file it writes, whether `all`
//! includes it), a [`Experiment::default_spec`], and a
//! [`Experiment::run`] that renders its table into a [`SummarySink`] and
//! returns a [`RunReport`]. The `repro` binary is a thin driver over
//! [`ExperimentRegistry`]: `--list` / `--help` text, defaults, and the
//! `all` composite are all generated from the registry, so adding a sweep is
//! one `impl Experiment` plus one `register` line — no new CLI wiring.
//!
//! Output discipline: experiments never print directly. Everything goes
//! through the sink (stdout in the binary, an in-memory buffer in tests),
//! and the tracked `BENCH_*.json` summaries are only written when the sink
//! persists — running an experiment from a test never touches them.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_quant::scheme::QuantScheme;
use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_tensor::ops;
use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_tensor::tensor::Matrix;
use nbsmt_tensor::validate::Validate;

use crate::experiments::accuracy::{
    fig10_pruning, fig7_robustness, mlperf_mobilenet, table3_policies, table4_comparison,
    table5_slowdown, AccuracyBench,
};
use crate::experiments::control_exp::{control_summary, control_sweep_with, ControlKnobs};
use crate::experiments::faults_exp::{faults_summary, faults_sweep_with, FaultKnobs};
use crate::experiments::hw_exp::table2_rows;
use crate::experiments::obs_exp::ObsBench;
use crate::experiments::scale_exp::{scale_summary, scale_sweep_with, ScaleKnobs, ANCHOR_REQUESTS};
use crate::experiments::serve_exp::{
    serve_summary, serve_sweep_with, shard_summary, shard_sweep_with,
};
use crate::experiments::zoo_exp::{
    energy_savings_with, fig1_utilization, fig8_mse_vs_sparsity_with, fig9_utilization_gain_with,
    table1_inventory,
};
use crate::spec::{ParamKey, RunSpec, SpecError};
use crate::summary::BenchSummary;
use crate::trace_export::{render_chrome_trace, stage_summary};

/// Writes a line into the sink, ignoring the (infallible in both sink
/// variants) formatter result.
macro_rules! out {
    ($sink:expr) => { let _ = writeln!($sink); };
    ($sink:expr, $($arg:tt)*) => { let _ = writeln!($sink, $($arg)*); };
}

/// Where an experiment's rendered output and summary files go.
///
/// [`SummarySink::stdout`] streams to the terminal and persists the tracked
/// `BENCH_*.json` summaries; [`SummarySink::capture`] buffers the text and
/// suppresses all file writes (the mode tests run experiments in).
pub struct SummarySink {
    out: SinkOut,
    persist: bool,
}

enum SinkOut {
    Stdout,
    Buffer(String),
}

impl SummarySink {
    /// The binary's sink: prints to stdout, persists summary files.
    pub fn stdout() -> SummarySink {
        SummarySink {
            out: SinkOut::Stdout,
            persist: true,
        }
    }

    /// The test sink: buffers output, never writes summary files.
    pub fn capture() -> SummarySink {
        SummarySink {
            out: SinkOut::Buffer(String::new()),
            persist: false,
        }
    }

    /// Whether experiments should write their `BENCH_*.json` summaries.
    pub fn persists(&self) -> bool {
        self.persist
    }

    /// The buffered output (capture sinks only).
    pub fn captured(&self) -> Option<&str> {
        match &self.out {
            SinkOut::Stdout => None,
            SinkOut::Buffer(text) => Some(text),
        }
    }
}

impl std::fmt::Write for SummarySink {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        match &mut self.out {
            SinkOut::Stdout => print!("{s}"),
            SinkOut::Buffer(text) => text.push_str(s),
        }
        Ok(())
    }
}

/// What a completed experiment run produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// The experiment that ran.
    pub experiment: String,
    /// Table rows / sweep cells produced.
    pub cells: usize,
    /// Summary files written (empty for a non-persisting sink).
    pub summaries: Vec<PathBuf>,
}

impl RunReport {
    fn new(experiment: &str) -> RunReport {
        RunReport {
            experiment: experiment.to_string(),
            ..RunReport::default()
        }
    }
}

/// Why an experiment run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The spec was invalid or not accepted by the experiment.
    Spec(SpecError),
    /// The requested experiment is not in the registry.
    UnknownExperiment(String),
    /// Writing a summary file failed.
    Io {
        /// The file being written.
        path: PathBuf,
        /// The underlying I/O error text.
        message: String,
    },
}

impl ExperimentError {
    fn io(path: &Path, error: &std::io::Error) -> ExperimentError {
        ExperimentError::Io {
            path: path.to_path_buf(),
            message: error.to_string(),
        }
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Spec(e) => write!(f, "{e}"),
            ExperimentError::UnknownExperiment(name) => {
                write!(f, "unknown experiment '{name}'")
            }
            ExperimentError::Io { path, message } => {
                write!(f, "failed to write {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<SpecError> for ExperimentError {
    fn from(e: SpecError) -> Self {
        ExperimentError::Spec(e)
    }
}

/// Static description of one experiment, rendered into `--list`, `--help`,
/// and the ARCHITECTURE.md experiment-harness table.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInfo {
    /// One-line description (the `--list` text).
    pub description: &'static str,
    /// Per-experiment [`ParamKey`]s this experiment accepts beyond the
    /// universal `scale` / `seed` / `threads` / `backend`. A spec that sets
    /// any other parameter is rejected with a typed error.
    pub params: &'static [ParamKey],
    /// The tracked summary file the experiment writes, if any.
    pub writes: Option<&'static str>,
    /// Whether `repro -- all` includes this experiment.
    pub in_all: bool,
}

/// One reproducible experiment: a paper table/figure or a serving sweep.
pub trait Experiment {
    /// The registry id (`fig8`, `serve`, …).
    fn name(&self) -> &'static str;

    /// Static description: `--list` text, accepted parameters, summary file.
    fn describe(&self) -> ExperimentInfo;

    /// The spec a bare `repro -- <name>` runs: [`RunSpec::defaults`] plus
    /// the experiment's own parameter defaults.
    fn default_spec(&self) -> RunSpec {
        RunSpec::defaults(self.name())
    }

    /// Runs the experiment, rendering its table into `sink`.
    ///
    /// Callers should go through [`ExperimentRegistry::run`], which
    /// validates the spec and checks its parameters against
    /// [`Self::describe`] first.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] on an unusable spec or a failed summary write.
    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError>;
}

/// The name of the composite experiment that runs every paper table and
/// figure (but never the explicit-only bench writers).
pub const ALL: &str = "all";

const ALL_DESCRIPTION: &str = "every paper table and figure above (not the bench writers)";

/// The order `all` executes in: the cheap zoo/hardware experiments first,
/// then the five accuracy experiments, which share one trained SynthNet via
/// [`AccuracyBench::shared`] — the same order the pre-registry driver used,
/// so `repro -- all` output is unchanged.
const ALL_RUN_ORDER: &[&str] = &[
    "table1", "fig1", "table2", "fig8", "fig9", "energy", "mlperf", "fig7", "table3", "table4",
    "table5", "fig10",
];

/// The experiment registry: name → [`Experiment`] in presentation order.
pub struct ExperimentRegistry {
    entries: Vec<Box<dyn Experiment>>,
}

impl ExperimentRegistry {
    /// An empty registry.
    pub fn new() -> ExperimentRegistry {
        ExperimentRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard registry: every experiment in the repository, in the
    /// paper's presentation order.
    pub fn standard() -> ExperimentRegistry {
        let mut registry = ExperimentRegistry::new();
        registry.register(Box::new(Table1));
        registry.register(Box::new(Fig1));
        registry.register(Box::new(Table2));
        registry.register(Box::new(Fig7));
        registry.register(Box::new(Table3));
        registry.register(Box::new(Table4));
        registry.register(Box::new(Fig8));
        registry.register(Box::new(Fig9));
        registry.register(Box::new(Table5));
        registry.register(Box::new(Fig10));
        registry.register(Box::new(Energy));
        registry.register(Box::new(Mlperf));
        registry.register(Box::new(GemmBench));
        registry.register(Box::new(Serve));
        registry.register(Box::new(Shard));
        registry.register(Box::new(Faults));
        registry.register(Box::new(Obs));
        registry.register(Box::new(ScaleExp));
        registry.register(Box::new(Control));
        registry
    }

    /// Adds an experiment at the end of the presentation order.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered or collides with `all`.
    pub fn register(&mut self, experiment: Box<dyn Experiment>) {
        let name = experiment.name();
        assert!(
            name != ALL && self.get(name).is_none(),
            "experiment '{name}' is already registered"
        );
        self.entries.push(experiment);
    }

    /// Looks up an experiment (the composite `all` is not an entry; use
    /// [`Self::contains`] / [`Self::run`] for it).
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(Box::as_ref)
    }

    /// Whether `name` is runnable — a registered experiment or `all`.
    pub fn contains(&self, name: &str) -> bool {
        name == ALL || self.get(name).is_some()
    }

    /// The registered experiments in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(Box::as_ref)
    }

    /// The default spec a bare `repro -- <name>` runs (including `all`).
    pub fn default_spec(&self, name: &str) -> Option<RunSpec> {
        if name == ALL {
            return Some(RunSpec::defaults(ALL));
        }
        self.get(name).map(Experiment::default_spec)
    }

    /// The parameter keys `name` accepts (`all` accepts only the universal
    /// keys).
    pub fn accepted_params(&self, name: &str) -> Option<&'static [ParamKey]> {
        if name == ALL {
            return Some(&[]);
        }
        self.get(name).map(|e| e.describe().params)
    }

    /// The `--list` body: one `name description` line per experiment plus
    /// the `all` composite, exactly as the binary prints it.
    pub fn list_text(&self) -> String {
        let mut text = String::from("Known experiments:\n");
        for experiment in self.iter() {
            let _ = writeln!(
                text,
                "  {:<10} {}",
                experiment.name(),
                experiment.describe().description
            );
        }
        let _ = writeln!(text, "  {ALL:<10} {ALL_DESCRIPTION}");
        text
    }

    /// The generated `--help` text: usage, flags, and the experiment list.
    pub fn help_text(&self) -> String {
        let mut text = String::from(
            "repro — regenerates every table and figure of the NB-SMT paper.\n\
             \n\
             Usage:\n\
             \x20 repro [<experiment>] [flags]           run an experiment (default: all)\n\
             \x20 repro --spec <path> [flags]            run the experiment a spec file describes\n\
             \n\
             Flags:\n\
             \x20 --spec <path>        load a RunSpec JSON file (see examples/specs/)\n\
             \x20 --set <key>=<value>  override one spec key: scale, seed, threads, backend,\n\
             \x20                      requests, replicas, fault_seed, crash_per_mille,\n\
             \x20                      stall_per_mille, straggle_per_mille, hedging, trace.path,\n\
             \x20                      arrival, size_alpha_x1024, size_min_x1024, size_max_x1024\n\
             \x20                      (repeatable, applied in order)\n\
             \x20 --dump-spec          print the resolved spec as JSON and exit without running\n\
             \x20 --full               shorthand for --set scale=full\n\
             \x20 --threads <n>        shorthand for --set threads=<n>\n\
             \x20 --backend <name>     shorthand for --set backend=<name> (naive, blocked, parallel, simd, packed)\n\
             \x20 --requests <n>       shorthand for --set requests=<n>\n\
             \x20 --replicas <list>    shorthand for --set replicas=<n[,n...]>\n\
             \x20 --list               list the experiments and exit\n\
             \x20 --help               this text\n\
             \n\
             A spec sets only the parameters its experiment declares; setting any\n\
             other key (e.g. --requests on fig8) is an error, not a silent no-op.\n\
             \n",
        );
        text.push_str(&self.list_text());
        text
    }

    /// The experiment-harness table for ARCHITECTURE.md, generated from
    /// [`Experiment::describe`] so the docs cannot drift from the registry.
    pub fn markdown_table(&self) -> String {
        let mut text = String::from(
            "| Experiment | Extra params | Writes | In `all` | Description |\n\
             |---|---|---|---|---|\n",
        );
        for experiment in self.iter() {
            let info = experiment.describe();
            let params = if info.params.is_empty() {
                "—".to_string()
            } else {
                info.params
                    .iter()
                    .map(|p| format!("`{}`", p.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                text,
                "| `{}` | {} | {} | {} | {} |",
                experiment.name(),
                params,
                info.writes.map_or("—".to_string(), |w| format!("`{w}`")),
                if info.in_all { "yes" } else { "no" },
                info.description
            );
        }
        text
    }

    /// The full spec check every entry point applies: value validation,
    /// experiment lookup, and declared-parameter acceptance. [`Self::run`]
    /// calls this before running; the `repro` driver calls it before
    /// `--dump-spec` — one implementation, so the two can never drift.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] on an unknown experiment or an invalid /
    /// not-accepted spec.
    pub fn check(&self, spec: &RunSpec) -> Result<(), ExperimentError> {
        spec.validate()?;
        let accepted = self
            .accepted_params(&spec.experiment)
            .ok_or_else(|| ExperimentError::UnknownExperiment(spec.experiment.clone()))?;
        spec.check_params(accepted)?;
        Ok(())
    }

    /// Validates `spec` (values and experiment-declared parameters) and runs
    /// the experiment it names — including the `all` composite, which runs
    /// every `in_all` experiment in the canonical order with the spec's
    /// scale/seed/exec applied over each experiment's own defaults.
    ///
    /// # Errors
    ///
    /// [`ExperimentError`] on an unknown experiment, an invalid or
    /// not-accepted spec, or a failed summary write.
    pub fn run(
        &self,
        spec: &RunSpec,
        sink: &mut SummarySink,
    ) -> Result<RunReport, ExperimentError> {
        self.check(spec)?;
        if spec.experiment != ALL {
            let experiment = self.get(&spec.experiment).expect("checked above");
            return experiment.run(spec, sink);
        }
        let mut report = RunReport::new(ALL);
        for name in ALL_RUN_ORDER {
            let experiment = self
                .get(name)
                .unwrap_or_else(|| panic!("'{name}' from the all-order is registered"));
            debug_assert!(experiment.describe().in_all);
            let mut child = experiment.default_spec();
            child.scale = spec.scale;
            child.seed = spec.seed;
            child.exec = spec.exec;
            let sub = experiment.run(&child, sink)?;
            report.cells += sub.cells;
            report.summaries.extend(sub.summaries);
        }
        Ok(report)
    }
}

impl Default for ExperimentRegistry {
    fn default() -> Self {
        ExperimentRegistry::standard()
    }
}

/// The shared accuracy fixture, training it (with progress lines, as the
/// monolithic driver printed them) only on a cache miss.
fn accuracy_bench(spec: &RunSpec, sink: &mut SummarySink) -> Arc<AccuracyBench> {
    if let Some(bench) = AccuracyBench::cached(spec.scale, spec.seed, spec.exec) {
        return bench;
    }
    out!(
        sink,
        "Training SynthNet (accuracy substrate, see ARCHITECTURE.md, substitution 1)…"
    );
    let bench = AccuracyBench::shared(spec.scale, spec.seed, spec.exec);
    out!(
        sink,
        "SynthNet FP32 accuracy: {:.2}% | A8W8 accuracy: {:.2}%\n",
        bench.fp32_accuracy() * 100.0,
        bench.int8_accuracy() * 100.0
    );
    bench
}

struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Table I — evaluated CNN models and their MAC counts",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, _spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## Table I — evaluated CNN models (per-image MAC operations)\n"
        );
        out!(
            sink,
            "{:<14} {:>12} {:>12}",
            "Model",
            "CONV [GMAC]",
            "FC [MMAC]"
        );
        let rows = table1_inventory();
        for row in &rows {
            out!(
                sink,
                "{:<14} {:>12.2} {:>12.1}",
                row.model,
                row.conv_gmacs,
                row.fc_mmacs
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Fig1;

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Fig. 1 — MAC utilization breakdown during CNN inference",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## Fig. 1 — MAC utilization breakdown during CNN inference\n"
        );
        out!(
            sink,
            "{:<14} {:>12} {:>20} {:>8}",
            "Model",
            "Utilized",
            "Partially utilized",
            "Idle"
        );
        let rows = fig1_utilization(spec.scale);
        for row in &rows {
            out!(
                sink,
                "{:<14} {:>11.1}% {:>19.1}% {:>7.1}%",
                row.model,
                row.fully_utilized * 100.0,
                row.partially_utilized * 100.0,
                row.idle * 100.0
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Table II — design parameters, power, and area",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, _spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(sink, "## Table II — design parameters, power, and area\n");
        out!(
            sink,
            "{:<10} {:>12} {:>14} {:>12} {:>10} {:>10} {:>10}",
            "Design",
            "GMAC/s",
            "P@80% [mW]",
            "Area [mm2]",
            "Area [x]",
            "PE [um2]",
            "MAC [um2]"
        );
        let rows = table2_rows();
        for row in &rows {
            out!(
                sink,
                "{:<10} {:>12.0} {:>14.0} {:>12.3} {:>10.2} {:>10.0} {:>10.0}",
                row.design,
                row.throughput_gmacs,
                row.power_mw_at_80,
                row.total_area_mm2,
                row.area_ratio,
                row.pe_area_um2,
                row.mac_area_um2
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Fig7;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Fig. 7 — whole-model robustness to precision reduction",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let bench = accuracy_bench(spec, sink);
        out!(
            sink,
            "## Fig. 7 — whole-model robustness to on-the-fly precision reduction\n"
        );
        out!(sink, "{:<8} {:>10}", "Point", "Top-1 [%]");
        let rows = fig7_robustness(&bench);
        for row in &rows {
            out!(sink, "{:<8} {:>10.2}", row.point, row.accuracy * 100.0);
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Table III — 2T SySMT sharing policies",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let bench = accuracy_bench(spec, sink);
        out!(
            sink,
            "## Table III — 2T SySMT sharing policies (no reordering)\n"
        );
        out!(sink, "{:<12} {:>10}", "Policy", "Top-1 [%]");
        let rows = table3_policies(&bench);
        for row in &rows {
            out!(sink, "{:<12} {:>10.2}", row.policy, row.accuracy * 100.0);
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Table IV — 2T SySMT vs post-training quantization",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let bench = accuracy_bench(spec, sink);
        out!(
            sink,
            "## Table IV — 2T SySMT vs post-training quantization comparators\n"
        );
        out!(sink, "{:<28} {:>10}", "Method", "Top-1 [%]");
        let rows = table4_comparison(&bench);
        for row in &rows {
            out!(sink, "{:<28} {:>10.2}", row.method, row.accuracy * 100.0);
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Fig8;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Fig. 8 — per-layer MSE vs activation sparsity",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## Fig. 8 — per-layer MSE vs activation sparsity (GoogLeNet proxy, 2T)\n"
        );
        out!(
            sink,
            "{:<26} {:>10} {:>16} {:>16}",
            "Layer",
            "Sparsity",
            "MSE w/o reorder",
            "MSE w/ reorder"
        );
        let points = fig8_mse_vs_sparsity_with(spec.scale, &spec.exec.context());
        for p in &points {
            out!(
                sink,
                "{:<26} {:>9.1}% {:>16.3e} {:>16.3e}",
                p.layer,
                p.sparsity * 100.0,
                p.mse_without_reorder,
                p.mse_with_reorder
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = points.len();
        Ok(report)
    }
}

struct Fig9;

impl Experiment for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Fig. 9 — utilization improvement vs sparsity",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## Fig. 9 — utilization improvement vs sparsity (GoogLeNet proxy, 2T)\n"
        );
        out!(
            sink,
            "{:<26} {:>10} {:>17} {:>16} {:>10}",
            "Layer",
            "Sparsity",
            "Gain w/o reorder",
            "Gain w/ reorder",
            "Eq. 8"
        );
        let points = fig9_utilization_gain_with(spec.scale, &spec.exec.context());
        for p in &points {
            out!(
                sink,
                "{:<26} {:>9.1}% {:>17.3} {:>16.3} {:>10.3}",
                p.layer,
                p.sparsity * 100.0,
                p.gain_without_reorder,
                p.gain_with_reorder,
                p.analytic_gain
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = points.len();
        Ok(report)
    }
}

struct Table5;

impl Experiment for Table5 {
    fn name(&self) -> &'static str {
        "table5"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Table V — 4T SySMT with high-MSE layers slowed to 2T",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let bench = accuracy_bench(spec, sink);
        out!(
            sink,
            "## Table V — 4T SySMT with high-MSE layers slowed to 2T\n"
        );
        out!(
            sink,
            "{:<14} {:>10} {:>10}",
            "Layers @2T",
            "Top-1 [%]",
            "Speedup"
        );
        let rows = table5_slowdown(&bench);
        for row in &rows {
            out!(
                sink,
                "{:<14} {:>10.2} {:>9.2}x",
                row.layers_at_2t,
                row.accuracy * 100.0,
                row.speedup
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "Fig. 10 — accuracy vs 4T speedup for pruned models",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let bench = accuracy_bench(spec, sink);
        out!(
            sink,
            "## Fig. 10 — accuracy vs 4T speedup for pruned models\n"
        );
        out!(
            sink,
            "{:<10} {:>12} {:>10} {:>10}",
            "Pruned",
            "Layers @2T",
            "Top-1 [%]",
            "Speedup"
        );
        let points = fig10_pruning(&bench, spec.scale);
        for p in &points {
            out!(
                sink,
                "{:<10} {:>12} {:>10.2} {:>9.2}x",
                format!("{:.0}%", p.pruned * 100.0),
                p.layers_at_2t,
                p.accuracy * 100.0,
                p.speedup
            );
        }
        out!(sink);
        let mut report = RunReport::new(self.name());
        report.cells = points.len();
        Ok(report)
    }
}

struct Energy;

impl Experiment for Energy {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "§V-A — energy savings of SySMT over the baseline array",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## §V-A — energy savings of SySMT over the conventional array\n"
        );
        out!(
            sink,
            "{:<14} {:>10} {:>10}",
            "Model",
            "2T saving",
            "4T saving"
        );
        let rows = energy_savings_with(spec.scale, &spec.exec.context());
        let mut avg2 = 0.0;
        let mut avg4 = 0.0;
        for row in &rows {
            out!(
                sink,
                "{:<14} {:>9.1}% {:>9.1}%",
                row.model,
                row.saving_2t * 100.0,
                row.saving_4t * 100.0
            );
            avg2 += row.saving_2t;
            avg4 += row.saving_4t;
        }
        out!(
            sink,
            "{:<14} {:>9.1}% {:>9.1}%\n",
            "Average",
            avg2 / rows.len() as f64 * 100.0,
            avg4 / rows.len() as f64 * 100.0
        );
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        Ok(report)
    }
}

struct Mlperf;

impl Experiment for Mlperf {
    fn name(&self) -> &'static str {
        "mlperf"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "§V-B — MobileNet-v1 MLPerf-style operating point",
            params: &[],
            writes: None,
            in_all: true,
        }
    }

    fn run(&self, _spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(
            sink,
            "## §V-B MLPerf — MobileNet-v1 operating point (pointwise @2T, depthwise @1T)\n"
        );
        let row = mlperf_mobilenet();
        out!(
            sink,
            "{}: speedup {:.2}x with {:.1}% of MACs executed at two threads\n",
            row.model,
            row.speedup,
            row.fraction_at_2t * 100.0
        );
        let mut report = RunReport::new(self.name());
        report.cells = 1;
        Ok(report)
    }
}

struct GemmBench;

impl Experiment for GemmBench {
    fn name(&self) -> &'static str {
        "gemmbench"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description: "host GEMM/NB-SMT throughput → BENCH_baseline.json (explicit only)",
            params: &[],
            writes: Some("BENCH_baseline.json"),
            in_all: false,
        }
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        out!(sink, "## gemmbench — host execution layer throughput\n");
        let dim = match spec.scale {
            crate::Scale::Quick => 256,
            crate::Scale::Full => 512,
        };
        let iters = match spec.scale {
            crate::Scale::Quick => 5,
            crate::Scale::Full => 10,
        };
        let mut summary = BenchSummary::new();

        // Integer GEMM: one square problem per backend, plus the requested
        // thread count for the parallel backend.
        let mut synth = TensorSynthesizer::new(42);
        let to_i32 = |t: nbsmt_tensor::tensor::Tensor<f32>, r: usize, c: usize| {
            Matrix::from_vec(
                t.into_vec().iter().map(|&v| (v * 127.0) as i32).collect(),
                r,
                c,
            )
            .expect("dimensions match")
        };
        let a = to_i32(
            synth.tensor(&SynthesisConfig::activation(0.5, 0.5), &[dim, dim]),
            dim,
            dim,
        );
        let b = to_i32(
            synth.tensor(&SynthesisConfig::weight(0.3, 0.0), &[dim, dim]),
            dim,
            dim,
        );
        let macs = (dim * dim * dim) as u64;
        let mut runs: Vec<(String, ExecContext)> = vec![
            (
                format!("gemm_i32_{dim}_naive_1t"),
                ExecContext::sequential(),
            ),
            (
                format!("gemm_i32_{dim}_blocked_1t"),
                ExecContext::new(ExecConfig {
                    threads: 1,
                    backend: GemmBackendKind::Blocked,
                    ..ExecConfig::default()
                }),
            ),
            (
                format!("gemm_i32_{dim}_simd_1t"),
                ExecContext::new(ExecConfig {
                    threads: 1,
                    backend: GemmBackendKind::Simd,
                    ..ExecConfig::default()
                }),
            ),
            (
                format!("gemm_i32_{dim}_packed_1t"),
                ExecContext::new(ExecConfig {
                    threads: 1,
                    backend: GemmBackendKind::Packed,
                    ..ExecConfig::default()
                }),
            ),
        ];
        let parallel_ctx = ExecContext::new(ExecConfig {
            threads: spec.exec.threads,
            backend: GemmBackendKind::Parallel,
            ..ExecConfig::default()
        });
        // Name from the context's (clamped) thread count so the id always
        // matches the record's `threads` field.
        runs.push((
            format!("gemm_i32_{dim}_parallel_{}t", parallel_ctx.threads()),
            parallel_ctx,
        ));
        out!(
            sink,
            "{:<28} {:>12} {:>12} {:>10}",
            "Benchmark",
            "mean [ms]",
            "GMAC/s",
            "threads"
        );
        for (name, ctx) in &runs {
            let record = summary.measure(
                name,
                ctx.threads(),
                ctx.config().backend.name(),
                macs,
                iters,
                || {
                    ops::matmul_i32_with(ctx, &a, &b).expect("dimensions match");
                },
            );
            out!(
                sink,
                "{:<28} {:>12.2} {:>12.2} {:>10}",
                record.name,
                record.mean_ns / 1e6,
                record.gmacs_per_s(),
                record.threads
            );
        }

        // NB-SMT layer emulation at 2T and 4T through the configured context.
        let (m, k, n) = (dim / 2, dim, dim / 4);
        let qx = quantize_activations(
            &Matrix::from_vec(
                synth
                    .tensor(&SynthesisConfig::activation(0.4, 0.5), &[m, k])
                    .into_vec(),
                m,
                k,
            )
            .expect("dimensions match"),
            &QuantScheme::activation_a8(),
            Some((0.0, 1.0)),
        );
        let qw = quantize_weights(
            &Matrix::from_vec(
                synth
                    .tensor(&SynthesisConfig::weight(0.12, 0.0), &[k, n])
                    .into_vec(),
                k,
                n,
            )
            .expect("dimensions match"),
            &QuantScheme::weight_w8(),
        );
        let ctx = spec.exec.context();
        for (label, threads) in [("2t", ThreadCount::Two), ("4t", ThreadCount::Four)] {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: false,
            });
            // Two cells per design point: the event-walking oracle (the
            // historical `nbsmt_*` cells, name-compatible with previous
            // baselines) and the algorithmic fast path `execute_with` now
            // dispatches to (`nbsmt_fast_*`).
            let oracle_name = format!("nbsmt_{label}_layer_{m}x{k}x{n}_{}t", ctx.threads());
            let fast_name = format!("nbsmt_fast_{label}_layer_{m}x{k}x{n}_{}t", ctx.threads());
            for (name, fast) in [(&oracle_name, false), (&fast_name, true)] {
                let record = summary.measure(
                    name,
                    ctx.threads(),
                    ctx.config().backend.name(),
                    (m * k * n) as u64,
                    iters,
                    || {
                        if fast {
                            emu.execute_with(&ctx, &qx, &qw).expect("dimensions match");
                        } else {
                            emu.execute_event_with(&ctx, &qx, &qw)
                                .expect("dimensions match");
                        }
                    },
                );
                out!(
                    sink,
                    "{:<28} {:>12.2} {:>12.2} {:>10}",
                    record.name,
                    record.mean_ns / 1e6,
                    record.gmacs_per_s(),
                    record.threads
                );
            }
        }

        let mut report = RunReport::new(self.name());
        report.cells = summary.records.len();
        if sink.persists() {
            let path = Path::new("BENCH_baseline.json");
            summary
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {}\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct Serve;

impl Experiment for Serve {
    fn name(&self) -> &'static str {
        "serve"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "serving sweep: offered load × NB-SMT config → BENCH_serve.json (explicit only)",
            params: &[ParamKey::Requests],
            writes: Some("BENCH_serve.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(256);
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let requests = spec
            .requests
            .or(self.default_spec().requests)
            .expect("default_spec sets requests");
        out!(
            sink,
            "## serve — offered load × NB-SMT configuration ({requests} requests/cell)\n"
        );
        out!(
            sink,
            "Training SynthNet and compiling dense/2T/4T sessions…\n"
        );
        let rows = serve_sweep_with(spec.scale, &spec.exec, requests, spec.seed);
        out!(
            sink,
            "{:<6} {:<12} {:>8} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>7} {:>6}",
            "SMT",
            "Arrival",
            "Offered",
            "Done",
            "Shed",
            "Thru[rps]",
            "p50[ms]",
            "p95[ms]",
            "p99[ms]",
            "Batch",
            "Depth"
        );
        for row in &rows {
            let offered = if row.arrival == "closed_loop" {
                format!("{}cl", row.offered as u64)
            } else {
                format!("{:.1}x", row.offered)
            };
            out!(
                sink,
                "{:<6} {:<12} {:>8} {:>6} {:>6} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>6}",
                row.smt,
                row.arrival,
                offered,
                row.completed,
                row.rejected,
                row.throughput_rps,
                row.p50_ms,
                row.p95_ms,
                row.p99_ms,
                row.mean_batch,
                row.max_queue_depth
            );
        }
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        if sink.persists() {
            let path = Path::new("BENCH_serve.json");
            serve_summary(&rows)
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct Shard;

impl Experiment for Shard {
    fn name(&self) -> &'static str {
        "shard"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "sharded serving sweep: replicas × route × {dense,adaptive} → BENCH_serve.json (explicit only)",
            params: &[ParamKey::Requests, ParamKey::Replicas],
            writes: Some("BENCH_serve.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(256);
        spec.replicas = Some(vec![1, 2, 4]);
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let defaults = self.default_spec();
        let requests = spec
            .requests
            .or(defaults.requests)
            .expect("default_spec sets requests");
        let replicas = &spec
            .replicas
            .clone()
            .or(defaults.replicas)
            .expect("default_spec sets replicas");
        out!(
            sink,
            "## shard — replicas × route × {{dense, adaptive}} ({requests} requests/cell, replicas {replicas:?})\n"
        );
        out!(
            sink,
            "Training SynthNet and compiling the dense/2T/4T ladder…\n"
        );
        let rows = shard_sweep_with(spec.scale, &spec.exec, requests, replicas, spec.seed);
        out!(
            sink,
            "{:<4} {:<6} {:<9} {:>8} {:>6} {:>6} {:>10} {:>9} {:>9} {:>7} {:>6} {:>14}",
            "R",
            "Route",
            "Policy",
            "Offered",
            "Done",
            "Shed",
            "Thru[rps]",
            "p95[ms]",
            "p99[ms]",
            "Batch",
            "Trans",
            "Batches/mode"
        );
        for row in &rows {
            out!(
                sink,
                "{:<4} {:<6} {:<9} {:>7.1}x {:>6} {:>6} {:>10.1} {:>9.2} {:>9.2} {:>7.2} {:>6} {:>14}",
                row.replicas,
                row.route,
                row.policy,
                row.offered,
                row.completed,
                row.rejected,
                row.throughput_rps,
                row.p95_ms,
                row.p99_ms,
                row.mean_batch,
                row.mode_transitions,
                format!("{:?}", row.batches_per_mode),
            );
        }
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        if sink.persists() {
            let path = Path::new("BENCH_serve.json");
            shard_summary(&rows)
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct Faults;

impl Experiment for Faults {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "availability under injected failures: chaos corpus × countermeasures → BENCH_faults.json (explicit only)",
            params: &[
                ParamKey::Requests,
                ParamKey::FaultSeed,
                ParamKey::CrashPerMille,
                ParamKey::StallPerMille,
                ParamKey::StragglePerMille,
                ParamKey::Hedging,
            ],
            writes: Some("BENCH_faults.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(64);
        spec.fault_seed = Some(7);
        spec.crash_per_mille = Some(30);
        spec.stall_per_mille = Some(60);
        spec.straggle_per_mille = Some(90);
        spec.hedging = Some(true);
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let defaults = self.default_spec();
        let requests = spec
            .requests
            .or(defaults.requests)
            .expect("default_spec sets requests");
        let knobs = FaultKnobs {
            fault_seed: spec
                .fault_seed
                .or(defaults.fault_seed)
                .expect("default_spec sets fault_seed"),
            crash_per_mille: spec
                .crash_per_mille
                .or(defaults.crash_per_mille)
                .expect("default_spec sets crash_per_mille"),
            stall_per_mille: spec
                .stall_per_mille
                .or(defaults.stall_per_mille)
                .expect("default_spec sets stall_per_mille"),
            straggle_per_mille: spec
                .straggle_per_mille
                .or(defaults.straggle_per_mille)
                .expect("default_spec sets straggle_per_mille"),
            hedging: spec
                .hedging
                .or(defaults.hedging)
                .expect("default_spec sets hedging"),
        };
        out!(
            sink,
            "## faults — availability under injected failures ({requests} requests/cell, 2 replicas)\n"
        );
        out!(
            sink,
            "Training SynthNet and compiling the dense/2T/4T ladder…\n"
        );
        let rows = faults_sweep_with(spec.scale, &spec.exec, requests, spec.seed, knobs);
        out!(
            sink,
            "{:<26} {:<4} {:<8} {:<11} {:>6} {:>6} {:>6} {:>9} {:>9} {:>6} {:>5} {:>7} {:>6} {:>5}",
            "Schedule",
            "Mode",
            "Policy",
            "CM",
            "Done",
            "Lost",
            "Avail",
            "p95[ms]",
            "p99[ms]",
            "Crash",
            "Hand",
            "Retry",
            "Hedge",
            "Wins"
        );
        for row in &rows {
            out!(
                sink,
                "{:<26} {:<4} {:<8} {:<11} {:>6} {:>6} {:>5.1}% {:>9.2} {:>9.2} {:>6} {:>5} {:>7} {:>6} {:>5}",
                row.schedule,
                row.mode,
                row.policy,
                row.cm,
                row.completed,
                row.failed,
                row.availability * 100.0,
                row.p95_ms,
                row.p99_ms,
                row.crashes,
                row.handoffs,
                row.retries,
                row.hedges,
                row.hedge_wins
            );
        }
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        if sink.persists() {
            let path = Path::new("BENCH_faults.json");
            faults_summary(&rows)
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct Obs;

impl Experiment for Obs {
    fn name(&self) -> &'static str {
        "obs"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "tracing overhead: recorder on vs off on one seeded pool run → BENCH_obs.json (explicit only)",
            params: &[ParamKey::Requests, ParamKey::Trace],
            writes: Some("BENCH_obs.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(96);
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let defaults = self.default_spec();
        let requests = spec
            .requests
            .or(defaults.requests)
            .expect("default_spec sets requests");
        out!(
            sink,
            "## obs — tracing overhead (recorder on vs off, {requests} requests, 2 replicas)\n"
        );
        out!(
            sink,
            "Training SynthNet and compiling the dense/2T/4T ladder…\n"
        );
        let bench = ObsBench::prepare(spec.scale, &spec.exec, requests, spec.seed);
        let iters = match spec.scale {
            crate::Scale::Quick => 5,
            crate::Scale::Full => 10,
        };
        let backend = spec.exec.backend.name();
        // One untimed pass per cell warms the allocator, the weight-pack
        // caches, and the branch predictors — without it the first measured
        // cell eats the cold-start cost and the overhead number is noise.
        bench.run_off();
        bench.run_traced();
        let mut summary = BenchSummary::new();
        let off_ns = summary
            .measure(
                &format!("obs_recorder_off_n{requests}"),
                spec.exec.threads,
                backend,
                0,
                iters,
                || {
                    bench.run_off();
                },
            )
            .mean_ns;
        let on_ns = summary
            .measure(
                &format!("obs_recorder_on_n{requests}"),
                spec.exec.threads,
                backend,
                0,
                iters,
                || {
                    bench.run_traced();
                },
            )
            .mean_ns;
        let overhead = (on_ns - off_ns) / off_ns * 100.0;
        out!(
            sink,
            "recorder off: {:.2} ms/run   recorder on: {:.2} ms/run   overhead: {:+.1}%",
            off_ns / 1e6,
            on_ns / 1e6,
            overhead
        );
        // The traced replay is also the determinism check: two runs of the
        // same seeded workload must export byte-identical Chrome traces.
        let (outcome, snapshot) = bench.run_traced();
        let rendered = render_chrome_trace(&snapshot);
        let (_, again) = bench.run_traced();
        assert_eq!(
            rendered,
            render_chrome_trace(&again),
            "traced replays must export byte-identical traces"
        );
        out!(
            sink,
            "trace: {} events, {} dropped, {} requests completed; byte-identical across replays\n",
            snapshot.events.len(),
            snapshot.dropped,
            outcome.metrics.completed
        );
        out!(sink, "{}", stage_summary(&snapshot).trim_end());
        let mut report = RunReport::new(self.name());
        report.cells = 2;
        if sink.persists() {
            if let Some(trace_path) = &spec.trace {
                let path = Path::new(trace_path);
                std::fs::write(path, &rendered).map_err(|e| ExperimentError::io(path, &e))?;
                out!(
                    sink,
                    "\nwrote {} (Chrome trace-event format)",
                    path.display()
                );
            }
            let path = Path::new("BENCH_obs.json");
            summary
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct ScaleExp;

impl Experiment for ScaleExp {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "scale-regime sweep: traffic model × policy × replicas, stats-only at 10^6 requests → BENCH_scale.json (explicit only)",
            params: &[
                ParamKey::Requests,
                ParamKey::Replicas,
                ParamKey::Arrival,
                ParamKey::SizeAlpha,
                ParamKey::SizeMin,
                ParamKey::SizeMax,
            ],
            writes: Some("BENCH_scale.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(20_000);
        spec.replicas = Some(vec![8, 64]);
        spec.arrival = Some("all".to_string());
        spec.size_alpha_x1024 = Some(1536);
        spec.size_min_x1024 = Some(1024);
        spec.size_max_x1024 = Some(8192);
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let defaults = self.default_spec();
        let requests = spec
            .requests
            .or(defaults.requests)
            .expect("default_spec sets requests");
        let replicas = &spec
            .replicas
            .clone()
            .or(defaults.replicas)
            .expect("default_spec sets replicas");
        let knobs = ScaleKnobs {
            arrival: spec
                .arrival
                .clone()
                .or(defaults.arrival)
                .expect("default_spec sets arrival"),
            size_alpha_x1024: spec
                .size_alpha_x1024
                .or(defaults.size_alpha_x1024)
                .expect("default_spec sets size_alpha_x1024"),
            size_min_x1024: spec
                .size_min_x1024
                .or(defaults.size_min_x1024)
                .expect("default_spec sets size_min_x1024"),
            size_max_x1024: spec
                .size_max_x1024
                .or(defaults.size_max_x1024)
                .expect("default_spec sets size_max_x1024"),
            anchor_requests: ANCHOR_REQUESTS,
        };
        out!(
            sink,
            "## scale — traffic model × policy × replicas ({requests} requests/cell + 10^6-request anchor, replicas {replicas:?}, arrival {})\n",
            knobs.arrival
        );
        out!(
            sink,
            "Training SynthNet and compiling the dense/2T/4T ladder…\n"
        );
        let rows = scale_sweep_with(spec.scale, requests, replicas, spec.seed, &knobs);
        out!(
            sink,
            "{:<8} {:<9} {:>4} {:>8} {:>9} {:>8} {:>10} {:>9} {:>9} {:>9} {:>7} {:>6}",
            "Arrival",
            "Policy",
            "R",
            "Offered",
            "Done",
            "Shed",
            "Thru[rps]",
            "p50[ms]",
            "p95[ms]",
            "p99[ms]",
            "Batch",
            "Trans"
        );
        for row in &rows {
            out!(
                sink,
                "{:<8} {:<9} {:>4} {:>7.1}x {:>9} {:>8} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>7.2} {:>6}",
                row.arrival,
                row.policy,
                row.replicas,
                row.offered,
                row.completed,
                row.rejected,
                row.throughput_rps,
                row.p50_ms,
                row.p95_ms,
                row.p99_ms,
                row.mean_batch,
                row.mode_transitions
            );
        }
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        if sink.persists() {
            let path = Path::new("BENCH_scale.json");
            scale_summary(&rows)
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

struct Control;

impl Experiment for Control {
    fn name(&self) -> &'static str {
        "control"
    }

    fn describe(&self) -> ExperimentInfo {
        ExperimentInfo {
            description:
                "pool-controller sweep: {reactive, predictive, +autoscale, +steal} × traffic → BENCH_control.json (explicit only)",
            params: &[ParamKey::Requests, ParamKey::Replicas, ParamKey::Arrival],
            writes: Some("BENCH_control.json"),
            in_all: false,
        }
    }

    fn default_spec(&self) -> RunSpec {
        let mut spec = RunSpec::defaults(self.name());
        spec.requests = Some(20_000);
        spec.replicas = Some(vec![8, 64]);
        spec.arrival = Some("all".to_string());
        spec
    }

    fn run(&self, spec: &RunSpec, sink: &mut SummarySink) -> Result<RunReport, ExperimentError> {
        let defaults = self.default_spec();
        let requests = spec
            .requests
            .or(defaults.requests)
            .expect("default_spec sets requests");
        let replicas = &spec
            .replicas
            .clone()
            .or(defaults.replicas)
            .expect("default_spec sets replicas");
        let knobs = ControlKnobs {
            arrival: spec
                .arrival
                .clone()
                .or(defaults.arrival)
                .expect("default_spec sets arrival"),
        };
        out!(
            sink,
            "## control — controller variants × traffic model ({requests} requests/cell, replicas {replicas:?}, arrival {})\n",
            knobs.arrival
        );
        out!(
            sink,
            "Training SynthNet and compiling the dense/2T/4T ladder…\n"
        );
        let rows = control_sweep_with(spec.scale, requests, replicas, spec.seed, &knobs);
        out!(
            sink,
            "{:<8} {:<21} {:>4} {:>8} {:>9} {:>8} {:>9} {:>9} {:>10} {:>5} {:>5} {:>6} {:>6}",
            "Arrival",
            "Controller",
            "R",
            "Offered",
            "Done",
            "Shed",
            "p95[ms]",
            "p99[ms]",
            "Repl[s]",
            "Up",
            "Down",
            "Shift",
            "Stole"
        );
        for row in &rows {
            out!(
                sink,
                "{:<8} {:<21} {:>4} {:>7.1}x {:>9} {:>8} {:>9.2} {:>9.2} {:>10.2} {:>5} {:>5} {:>6} {:>6}",
                row.arrival,
                row.variant,
                row.replicas,
                row.offered,
                row.completed,
                row.rejected,
                row.p95_ms,
                row.p99_ms,
                row.replica_seconds,
                row.scale_ups,
                row.scale_downs,
                row.predictive_shifts,
                row.stolen_requests
            );
        }
        let mut report = RunReport::new(self.name());
        report.cells = rows.len();
        if sink.persists() {
            let path = Path::new("BENCH_control.json");
            control_summary(&rows)
                .write(path)
                .map_err(|e| ExperimentError::io(path, &e))?;
            out!(sink, "\nwrote {} (merged by record name)\n", path.display());
            report.summaries.push(path.to_path_buf());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExecSettings;

    #[test]
    fn standard_registry_contains_every_experiment_once() {
        let registry = ExperimentRegistry::standard();
        let names: Vec<&str> = registry.iter().map(Experiment::name).collect();
        assert_eq!(
            names,
            vec![
                "table1",
                "fig1",
                "table2",
                "fig7",
                "table3",
                "table4",
                "fig8",
                "fig9",
                "table5",
                "fig10",
                "energy",
                "mlperf",
                "gemmbench",
                "serve",
                "shard",
                "faults",
                "obs",
                "scale",
                "control",
            ]
        );
        assert!(registry.contains(ALL));
        assert!(!registry.contains("nope"));
        // The all-order and describe().in_all must agree in BOTH directions:
        // every ordered name is registered and in_all, and every in_all
        // experiment appears in the order — otherwise `repro all` would
        // silently skip a newly registered experiment.
        for name in ALL_RUN_ORDER {
            assert!(registry.get(name).expect("registered").describe().in_all);
        }
        for experiment in registry.iter() {
            assert_eq!(
                experiment.describe().in_all,
                ALL_RUN_ORDER.contains(&experiment.name()),
                "'{}' is missing from (or wrongly present in) ALL_RUN_ORDER",
                experiment.name()
            );
        }
        for name in [
            "gemmbench",
            "serve",
            "shard",
            "faults",
            "obs",
            "scale",
            "control",
        ] {
            assert!(!registry.get(name).expect("registered").describe().in_all);
        }
    }

    #[test]
    fn default_specs_match_the_pre_registry_cli_defaults() {
        let registry = ExperimentRegistry::standard();
        let fig8 = registry.default_spec("fig8").expect("registered");
        assert_eq!(fig8.scale, crate::Scale::Quick);
        assert_eq!(fig8.seed, 2024);
        assert_eq!(fig8.requests, None);
        let serve = registry.default_spec("serve").expect("registered");
        assert_eq!(serve.requests, Some(256));
        assert_eq!(serve.replicas, None);
        let shard = registry.default_spec("shard").expect("registered");
        assert_eq!(shard.requests, Some(256));
        assert_eq!(shard.replicas, Some(vec![1, 2, 4]));
        let faults = registry.default_spec("faults").expect("registered");
        assert_eq!(faults.requests, Some(64));
        assert_eq!(faults.fault_seed, Some(7));
        assert_eq!(faults.crash_per_mille, Some(30));
        assert_eq!(faults.hedging, Some(true));
        let obs = registry.default_spec("obs").expect("registered");
        assert_eq!(obs.requests, Some(96));
        assert_eq!(obs.trace, None);
        let scale = registry.default_spec("scale").expect("registered");
        assert_eq!(scale.requests, Some(20_000));
        assert_eq!(scale.replicas, Some(vec![8, 64]));
        assert_eq!(scale.arrival.as_deref(), Some("all"));
        assert_eq!(scale.size_alpha_x1024, Some(1536));
        assert_eq!(scale.size_min_x1024, Some(1024));
        assert_eq!(scale.size_max_x1024, Some(8192));
        let control = registry.default_spec("control").expect("registered");
        assert_eq!(control.requests, Some(20_000));
        assert_eq!(control.replicas, Some(vec![8, 64]));
        assert_eq!(control.arrival.as_deref(), Some("all"));
        assert_eq!(control.size_alpha_x1024, None);
        assert_eq!(
            registry.default_spec(ALL).expect("composite").experiment,
            ALL
        );
        assert_eq!(registry.default_spec("nope"), None);
    }

    #[test]
    fn list_text_covers_every_entry_and_ends_with_all() {
        let registry = ExperimentRegistry::standard();
        let text = registry.list_text();
        for experiment in registry.iter() {
            assert!(text.contains(experiment.name()));
            assert!(text.contains(experiment.describe().description));
        }
        assert!(text.lines().last().expect("nonempty").starts_with("  all"));
        // Help embeds the same list plus flag documentation.
        let help = registry.help_text();
        assert!(help.contains("--dump-spec"));
        assert!(help.contains("Known experiments:"));
    }

    #[test]
    fn markdown_table_tracks_describe() {
        let registry = ExperimentRegistry::standard();
        let table = registry.markdown_table();
        assert!(table.contains("| `serve` | `requests` | `BENCH_serve.json` | no |"));
        assert!(table.contains("| `shard` | `requests`, `replicas` |"));
        assert!(table.contains(
            "| `faults` | `requests`, `fault_seed`, `crash_per_mille`, `stall_per_mille`, \
             `straggle_per_mille`, `hedging` | `BENCH_faults.json` | no |"
        ));
        assert!(table.contains("| `obs` | `requests`, `trace.path` | `BENCH_obs.json` | no |"));
        assert!(table.contains(
            "| `scale` | `requests`, `replicas`, `arrival`, `size_alpha_x1024`, \
             `size_min_x1024`, `size_max_x1024` | `BENCH_scale.json` | no |"
        ));
        assert!(table.contains(
            "| `control` | `requests`, `replicas`, `arrival` | `BENCH_control.json` | no |"
        ));
        assert!(table.contains("| `table1` | — | — | yes |"));
    }

    #[test]
    fn run_rejects_unknown_experiments_and_undeclared_params() {
        let registry = ExperimentRegistry::standard();
        let mut sink = SummarySink::capture();
        let unknown = RunSpec::defaults("fig99");
        assert!(matches!(
            registry.run(&unknown, &mut sink),
            Err(ExperimentError::UnknownExperiment(_))
        ));
        // `--requests` on a paper experiment is a typed error, not a silent
        // no-op (the pre-registry CLI dropped it on the floor).
        let mut fig8 = RunSpec::defaults("table1");
        fig8.requests = Some(64);
        assert!(matches!(
            registry.run(&fig8, &mut sink),
            Err(ExperimentError::Spec(SpecError::KeyNotAccepted { .. }))
        ));
        // Same for `all`.
        let mut all = RunSpec::defaults(ALL);
        all.replicas = Some(vec![2]);
        assert!(matches!(
            registry.run(&all, &mut sink),
            Err(ExperimentError::Spec(SpecError::KeyNotAccepted { .. }))
        ));
        // And invalid values are rejected before any work happens.
        let mut bad = RunSpec::defaults("table1");
        bad.exec.threads = 0;
        assert!(matches!(
            registry.run(&bad, &mut sink),
            Err(ExperimentError::Spec(SpecError::Bad { .. }))
        ));
    }

    #[test]
    fn cheap_experiments_run_through_the_registry_into_a_capture_sink() {
        let registry = ExperimentRegistry::standard();
        for (name, header) in [
            ("table1", "## Table I"),
            ("table2", "## Table II"),
            ("mlperf", "## §V-B MLPerf"),
        ] {
            let mut sink = SummarySink::capture();
            let mut spec = registry.default_spec(name).expect("registered");
            spec.exec = ExecSettings::sequential();
            let report = registry.run(&spec, &mut sink).expect("runs");
            assert_eq!(report.experiment, name);
            assert!(report.cells >= 1);
            assert!(
                report.summaries.is_empty(),
                "capture sinks must not write files"
            );
            let text = sink.captured().expect("capture sink buffers");
            assert!(text.contains(header), "{name} output:\n{text}");
        }
    }

    #[test]
    fn experiment_errors_display() {
        assert!(ExperimentError::UnknownExperiment("x".to_string())
            .to_string()
            .contains("'x'"));
        let io = ExperimentError::Io {
            path: PathBuf::from("BENCH_x.json"),
            message: "disk full".to_string(),
        };
        assert!(io.to_string().contains("BENCH_x.json"));
        assert!(io.to_string().contains("disk full"));
    }
}
