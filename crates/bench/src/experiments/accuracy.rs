//! Accuracy-shaped experiments on SynthNet: Fig. 7 (whole-model robustness),
//! Table III (2T sharing policies), Table IV (2T vs post-training
//! quantization), Table V (4T with per-layer slowdowns), Fig. 10 (pruning vs
//! speedup), and the MLPerf-style MobileNet operating point.
//!
//! These experiments substitute SynthNet for the paper's ImageNet models (see
//! ARCHITECTURE.md, substitution 1): the absolute accuracies differ, but every
//! comparison is run end to end through the same quantization + NB-SMT
//! emulation pipeline, so the orderings and trends are regenerated rather
//! than copied.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::tuning::{
    assignment_speedup, rank_layers_by_mse, LayerProfile as TuningProfile, ThreadAssignment,
};
use nbsmt_core::ThreadCount;
use nbsmt_nn::model::{Layer, Model};
use nbsmt_nn::quantized::{QuantizedModel, ReducedPrecisionEngine, ReferenceEngine};
use nbsmt_nn::train::Dataset;
use nbsmt_quant::scheme::OperatingPoint;
use nbsmt_sparsity::prune::prune_to_sparsity;
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Tensor;
use nbsmt_workloads::synthnet::{
    generate_dataset, train_synthnet, SynthTaskConfig, TrainedSynthNet,
};
use nbsmt_workloads::zoo::{mobilenet_v1, LayerKind};

use crate::engine::{NbSmtEngine, NbSmtEngineConfig};
use crate::scale::{ExecSettings, Scale};

/// Process-wide cache of trained accuracy fixtures, keyed by
/// `(scale, seed, threads, backend)`.
fn fixture_cache() -> &'static Mutex<HashMap<String, Arc<AccuracyBench>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<AccuracyBench>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn fixture_key(scale: Scale, seed: u64, exec: &ExecSettings) -> String {
    format!(
        "{}-{}-{}-{}",
        scale.name(),
        seed,
        exec.threads,
        exec.backend.name()
    )
}

/// The shared experimental setup: a trained, calibrated SynthNet plus its
/// evaluation split.
pub struct AccuracyBench {
    /// The trained model and data splits.
    pub trained: TrainedSynthNet,
    /// The calibrated quantized model.
    pub quantized: QuantizedModel,
    /// Evaluation images.
    pub test_images: Tensor<f32>,
    /// Evaluation labels.
    pub test_labels: Vec<usize>,
    /// The execution context every evaluation in this bench runs on. By the
    /// execution-layer determinism contract it changes wall-clock time only,
    /// never the reported numbers.
    pub exec: ExecContext,
}

impl AccuracyBench {
    /// Trains and calibrates SynthNet at the given scale, evaluating on the
    /// sequential execution context.
    ///
    /// # Panics
    ///
    /// Panics if training or calibration fails (they only fail on internal
    /// configuration errors).
    pub fn prepare(scale: Scale, seed: u64) -> Self {
        Self::prepare_with(scale, seed, ExecSettings::sequential())
    }

    /// [`Self::prepare`] with explicit host-execution settings (threads and
    /// GEMM backend) for the evaluation runs.
    ///
    /// # Panics
    ///
    /// Panics if training or calibration fails (they only fail on internal
    /// configuration errors).
    pub fn prepare_with(scale: Scale, seed: u64, exec: ExecSettings) -> Self {
        let task = SynthTaskConfig {
            classes: 6,
            image_size: 16,
            noise: 0.25,
        };
        let trained = train_synthnet(
            &task,
            scale.train_per_class(),
            scale.test_per_class(),
            scale.epochs(),
            seed,
        )
        .expect("SynthNet training succeeds");
        let calib = generate_dataset(&task, 8, seed.wrapping_add(77));
        let (calib_images, _) = calib.batch(0, calib.len());
        let quantized = QuantizedModel::calibrate(&trained.model, &[calib_images])
            .expect("calibration succeeds");
        let (test_images, test_labels) = trained.test.batch(0, trained.test.len());
        AccuracyBench {
            trained,
            quantized,
            test_images,
            test_labels,
            exec: exec.context(),
        }
    }

    /// Builds the same bench around an externally trained model (used by the
    /// pruning sweep, which retrains its own copies), inheriting the given
    /// execution context.
    pub fn from_model(
        model: &Model,
        test: &Dataset,
        task: &SynthTaskConfig,
        seed: u64,
        exec: ExecContext,
    ) -> Self {
        let calib = generate_dataset(task, 8, seed.wrapping_add(77));
        let (calib_images, _) = calib.batch(0, calib.len());
        let quantized =
            QuantizedModel::calibrate(model, &[calib_images]).expect("calibration succeeds");
        let (test_images, test_labels) = test.batch(0, test.len());
        AccuracyBench {
            trained: TrainedSynthNet {
                model: model.clone(),
                train: test.clone(),
                test: test.clone(),
                history: Vec::new(),
                task: *task,
            },
            quantized,
            test_images,
            test_labels,
            exec,
        }
    }

    /// FP32 accuracy.
    pub fn fp32_accuracy(&self) -> f64 {
        self.trained
            .model
            .accuracy(&self.test_images, &self.test_labels)
            .expect("forward succeeds")
    }

    /// Error-free 8-bit (A8W8) accuracy.
    pub fn int8_accuracy(&self) -> f64 {
        self.quantized
            .accuracy_with_ctx(
                &self.exec,
                &self.test_images,
                &self.test_labels,
                &mut ReferenceEngine,
            )
            .expect("forward succeeds")
    }

    /// Accuracy under an NB-SMT engine configuration; also returns the engine
    /// (with its per-layer statistics) for further analysis.
    pub fn nbsmt_accuracy(&self, config: NbSmtEngineConfig) -> (f64, NbSmtEngine) {
        let mut engine = NbSmtEngine::new(config);
        let acc = self
            .quantized
            .accuracy_with_ctx(
                &self.exec,
                &self.test_images,
                &self.test_labels,
                &mut engine,
            )
            .expect("forward succeeds");
        (acc, engine)
    }

    /// Accuracy under a whole-model reduced-precision operating point.
    pub fn reduced_accuracy(&self, point: OperatingPoint) -> f64 {
        let mut engine = ReducedPrecisionEngine { point };
        self.quantized
            .accuracy_with_ctx(
                &self.exec,
                &self.test_images,
                &self.test_labels,
                &mut engine,
            )
            .expect("forward succeeds")
    }

    /// The already-trained shared bench for these settings, if any.
    ///
    /// The five accuracy experiments (fig7, table3, table4, table5, fig10)
    /// share one trained SynthNet per `(scale, seed, exec)` so that running
    /// them back to back — `repro -- all`, or one registry experiment after
    /// another — trains once, exactly as the pre-registry monolithic driver
    /// did.
    pub fn cached(scale: Scale, seed: u64, exec: ExecSettings) -> Option<Arc<AccuracyBench>> {
        fixture_cache()
            .lock()
            .expect("fixture cache lock is never poisoned")
            .get(&fixture_key(scale, seed, &exec))
            .cloned()
    }

    /// The shared bench for these settings, training and caching it on the
    /// first call (see [`Self::cached`]).
    pub fn shared(scale: Scale, seed: u64, exec: ExecSettings) -> Arc<AccuracyBench> {
        if let Some(bench) = Self::cached(scale, seed, exec) {
            return bench;
        }
        // Train outside the lock: a long critical section would serialize
        // unrelated keys. Two racing first calls may both train; the entry
        // API keeps exactly one result.
        let bench = Arc::new(Self::prepare_with(scale, seed, exec));
        fixture_cache()
            .lock()
            .expect("fixture cache lock is never poisoned")
            .entry(fixture_key(scale, seed, &exec))
            .or_insert(bench)
            .clone()
    }

    /// Per-compute-layer MAC counts of the model (for speedup accounting).
    pub fn layer_mac_ops(&self) -> Vec<u64> {
        let mut macs = Vec::new();
        let dims = self.test_images.shape().dims();
        let (mut h, mut w) = (dims[2], dims[3]);
        for layer in self.trained.model.layers() {
            match layer {
                Layer::Conv2d(conv) => {
                    macs.push(conv.mac_ops(h, w));
                    h = conv.params.output_size(h);
                    w = conv.params.output_size(w);
                }
                Layer::Linear(lin) => macs.push(lin.mac_ops()),
                Layer::MaxPool2(_) => {
                    h /= 2;
                    w /= 2;
                }
                Layer::GlobalAvgPool(_) => {
                    h = 1;
                    w = 1;
                }
                _ => {}
            }
        }
        macs
    }
}

/// One row of the Fig. 7 robustness experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Operating point label (A8W8, A4W8, A8W4, A4W4).
    pub point: String,
    /// Top-1 accuracy at that operating point.
    pub accuracy: f64,
}

/// Runs the Fig. 7 whole-model robustness sweep.
pub fn fig7_robustness(bench: &AccuracyBench) -> Vec<Fig7Row> {
    let mut rows = vec![Fig7Row {
        point: "A8W8".into(),
        accuracy: bench.int8_accuracy(),
    }];
    for point in [
        OperatingPoint::A4W8,
        OperatingPoint::A8W4,
        OperatingPoint::A4W4,
    ] {
        rows.push(Fig7Row {
            point: point.label(),
            accuracy: bench.reduced_accuracy(point),
        });
    }
    rows
}

/// One row of Table III: a 2T sharing policy and its accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Policy label.
    pub policy: String,
    /// Top-1 accuracy under a 2T SySMT with that policy (no reordering,
    /// matching the paper's Table III).
    pub accuracy: f64,
}

/// Runs the Table III policy sweep (activation family plus the A4W8
/// worst-case lower bound).
pub fn table3_policies(bench: &AccuracyBench) -> Vec<Table3Row> {
    let mut rows = vec![
        Table3Row {
            policy: "A8W8".into(),
            accuracy: bench.int8_accuracy(),
        },
        Table3Row {
            policy: "min (A4W8)".into(),
            accuracy: bench.reduced_accuracy(OperatingPoint::A4W8),
        },
    ];
    for (name, policy) in SharingPolicy::table3_activation_family() {
        let config = NbSmtEngineConfig::uniform(ThreadCount::Two, policy, false)
            .with_layer_threads(0, ThreadCount::One);
        let (acc, _) = bench.nbsmt_accuracy(config);
        rows.push(Table3Row {
            policy: name.to_string(),
            accuracy: acc,
        });
    }
    rows
}

/// One row of Table IV: a quantization approach and its accuracy at the
/// 4-bit-activation operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Method name.
    pub method: String,
    /// Top-1 accuracy.
    pub accuracy: f64,
}

/// Runs the Table IV comparison: a 2T SySMT (with reordering) against the
/// whole-model post-training quantization comparators.
pub fn table4_comparison(bench: &AccuracyBench) -> Vec<Table4Row> {
    let (sysmt_acc, _) = bench.nbsmt_accuracy(
        NbSmtEngineConfig::uniform(ThreadCount::Two, SharingPolicy::S_A, true)
            .with_layer_threads(0, ThreadCount::One),
    );
    vec![
        Table4Row {
            method: "FP32".into(),
            accuracy: bench.fp32_accuracy(),
        },
        Table4Row {
            method: "A8W8 baseline".into(),
            accuracy: bench.int8_accuracy(),
        },
        Table4Row {
            method: "2T SySMT (S+A, reorder)".into(),
            accuracy: sysmt_acc,
        },
        Table4Row {
            method: "Static A4W8 (min-max)".into(),
            accuracy: bench.reduced_accuracy(OperatingPoint::A4W8),
        },
        Table4Row {
            method: "Static A4W4 (min-max)".into(),
            accuracy: bench.reduced_accuracy(OperatingPoint::A4W4),
        },
    ]
}

/// One row of Table V: a 4T operating point with some layers slowed to 2T.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Number of layers forced to two threads.
    pub layers_at_2t: usize,
    /// Top-1 accuracy.
    pub accuracy: f64,
    /// Architectural speedup over the 1-threaded baseline.
    pub speedup: f64,
}

/// Runs the Table V experiment: a 4T SySMT with 0, 1, and 2 of the
/// highest-MSE layers slowed down to 2T.
pub fn table5_slowdown(bench: &AccuracyBench) -> Vec<Table5Row> {
    // First pass at uniform 4T to record per-layer MSE.
    let (acc_4t, engine) = bench.nbsmt_accuracy(
        NbSmtEngineConfig::uniform(ThreadCount::Four, SharingPolicy::S_A, true)
            .with_layer_threads(0, ThreadCount::One),
    );
    let macs = bench.layer_mac_ops();
    // Speedup accounting covers the NB-SMT-executed layers only: the paper
    // leaves the first convolution and the fully connected layers intact and
    // reports the speedup of the layers that run under NB-SMT.
    let profiles: Vec<TuningProfile> = macs
        .iter()
        .enumerate()
        .map(|(i, &mac_ops)| TuningProfile {
            index: i,
            mac_ops: if i == 0 || i + 1 == macs.len() {
                0
            } else {
                mac_ops
            },
            mse: engine.layer_mse(i),
        })
        .collect();
    let ranked = rank_layers_by_mse(&profiles);

    let mut rows = Vec::new();
    for slow_count in 0..=2usize {
        let mut assignment = ThreadAssignment::uniform(profiles.len(), ThreadCount::Four);
        // The first convolution always runs at one thread in the paper.
        assignment.set(0, 1);
        let mut config = NbSmtEngineConfig::uniform(ThreadCount::Four, SharingPolicy::S_A, true)
            .with_layer_threads(0, ThreadCount::One);
        let mut slowed = 0usize;
        for &layer in &ranked {
            if slowed == slow_count {
                break;
            }
            if layer == 0 {
                continue;
            }
            assignment.set(layer, 2);
            config = config.with_layer_threads(layer, ThreadCount::Two);
            slowed += 1;
        }
        let accuracy = if slow_count == 0 {
            acc_4t
        } else {
            bench.nbsmt_accuracy(config).0
        };
        rows.push(Table5Row {
            layers_at_2t: slow_count,
            accuracy,
            speedup: assignment_speedup(&profiles, &assignment),
        });
    }
    rows
}

/// One point of the Fig. 10 pruning sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Fraction of pruned weights.
    pub pruned: f64,
    /// Number of layers slowed to 2T.
    pub layers_at_2t: usize,
    /// Top-1 accuracy under the 4T SySMT.
    pub accuracy: f64,
    /// Architectural speedup.
    pub speedup: f64,
}

/// Runs the Fig. 10 experiment: for each pruning level, prune + retrain the
/// model, then sweep the number of layers slowed to 2T under a 4T SySMT.
pub fn fig10_pruning(bench: &AccuracyBench, scale: Scale) -> Vec<Fig10Point> {
    let prune_levels = [0.0, 0.2, 0.4, 0.6];
    let max_slowdowns = 2usize;
    let mut points = Vec::new();
    for &level in &prune_levels {
        // Prune a copy of the trained model and retrain briefly.
        let mut model = bench.trained.model.clone();
        if level > 0.0 {
            prune_model(&mut model, level);
            let config = nbsmt_nn::train::SgdConfig {
                learning_rate: 0.03,
                batch_size: 16,
                epochs: scale.epochs() / 2,
            };
            let masks = collect_masks(&model);
            let _ = nbsmt_nn::train::train(&mut model, &bench.trained.train, &config, |m| {
                reapply_masks(m, &masks);
            });
        }
        let pruned_bench = AccuracyBench::from_model(
            &model,
            &bench.trained.test,
            &bench.trained.task,
            1234,
            bench.exec.clone(),
        );
        // 4T pass to rank layers by MSE.
        let (_, engine) = pruned_bench.nbsmt_accuracy(
            NbSmtEngineConfig::uniform(ThreadCount::Four, SharingPolicy::S_A, true)
                .with_layer_threads(0, ThreadCount::One),
        );
        let macs = pruned_bench.layer_mac_ops();
        // As in Table V, speedup covers the NB-SMT-executed layers only.
        let profiles: Vec<TuningProfile> = macs
            .iter()
            .enumerate()
            .map(|(i, &mac_ops)| TuningProfile {
                index: i,
                mac_ops: if i == 0 || i + 1 == macs.len() {
                    0
                } else {
                    mac_ops
                },
                mse: engine.layer_mse(i),
            })
            .collect();
        let ranked = rank_layers_by_mse(&profiles);
        for slow_count in 0..=max_slowdowns {
            let mut assignment = ThreadAssignment::uniform(profiles.len(), ThreadCount::Four);
            assignment.set(0, 1);
            let mut config =
                NbSmtEngineConfig::uniform(ThreadCount::Four, SharingPolicy::S_A, true)
                    .with_layer_threads(0, ThreadCount::One);
            let mut slowed = 0usize;
            for &layer in &ranked {
                if slowed == slow_count {
                    break;
                }
                if layer == 0 {
                    continue;
                }
                assignment.set(layer, 2);
                config = config.with_layer_threads(layer, ThreadCount::Two);
                slowed += 1;
            }
            let (accuracy, _) = pruned_bench.nbsmt_accuracy(config);
            points.push(Fig10Point {
                pruned: level,
                layers_at_2t: slow_count,
                accuracy,
                speedup: assignment_speedup(&profiles, &assignment),
            });
        }
    }
    points
}

fn prune_model(model: &mut Model, fraction: f64) {
    for layer in model.layers_mut() {
        match layer {
            Layer::Conv2d(conv) => {
                prune_to_sparsity(conv.weight.as_mut_slice(), fraction);
            }
            Layer::Linear(lin) => {
                prune_to_sparsity(lin.weight.as_mut_slice(), fraction);
            }
            _ => {}
        }
    }
}

fn collect_masks(model: &Model) -> Vec<Vec<bool>> {
    model
        .layers()
        .iter()
        .map(|layer| match layer {
            Layer::Conv2d(conv) => conv.weight.as_slice().iter().map(|&v| v != 0.0).collect(),
            Layer::Linear(lin) => lin.weight.as_slice().iter().map(|&v| v != 0.0).collect(),
            _ => Vec::new(),
        })
        .collect()
}

fn reapply_masks(model: &mut Model, masks: &[Vec<bool>]) {
    for (layer, mask) in model.layers_mut().iter_mut().zip(masks.iter()) {
        match layer {
            Layer::Conv2d(conv) => {
                for (w, &keep) in conv.weight.as_mut_slice().iter_mut().zip(mask.iter()) {
                    if !keep {
                        *w = 0.0;
                    }
                }
            }
            Layer::Linear(lin) => {
                for (w, &keep) in lin.weight.as_mut_slice().iter_mut().zip(mask.iter()) {
                    if !keep {
                        *w = 0.0;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Result of the MLPerf-style MobileNet operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlperfRow {
    /// Model name.
    pub model: String,
    /// Architectural speedup when pointwise convolutions run at 2T and
    /// depthwise convolutions at 1T.
    pub speedup: f64,
    /// Fraction of MACs executed at two threads.
    pub fraction_at_2t: f64,
}

/// Runs the MLPerf MobileNet-v1 operating point: pointwise and dense
/// convolutions at two threads, depthwise convolutions and the classifier at
/// one thread.
pub fn mlperf_mobilenet() -> MlperfRow {
    let model = mobilenet_v1();
    let mut total = 0u64;
    let mut scaled = 0.0f64;
    let mut at_2t = 0u64;
    for (i, layer) in model.layers.iter().enumerate() {
        let macs = layer.mac_ops();
        total += macs;
        let threads = if i == 0
            || layer.kind == LayerKind::Depthwise
            || layer.kind == LayerKind::FullyConnected
        {
            1
        } else {
            2
        };
        if threads == 2 {
            at_2t += macs;
        }
        scaled += macs as f64 / threads as f64;
    }
    MlperfRow {
        model: model.name,
        speedup: total as f64 / scaled,
        fraction_at_2t: at_2t as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Training SynthNet once and sharing it across tests keeps the suite
    /// fast; every test only exercises read-only evaluation paths.
    fn quick_bench() -> &'static AccuracyBench {
        static BENCH: OnceLock<AccuracyBench> = OnceLock::new();
        BENCH.get_or_init(|| AccuracyBench::prepare(Scale::Quick, 2024))
    }

    #[test]
    fn fig7_baseline_is_best_and_a4w4_is_worst() {
        let bench = quick_bench();
        let rows = fig7_robustness(bench);
        assert_eq!(rows.len(), 4);
        let a8w8 = rows[0].accuracy;
        let a4w4 = rows[3].accuracy;
        assert!(a8w8 >= a4w4, "A8W8 {a8w8} should be >= A4W4 {a4w4}");
        // INT8 tracks FP32 closely.
        assert!((bench.fp32_accuracy() - a8w8).abs() <= 0.15);
    }

    #[test]
    fn table3_combined_policy_beats_worst_case() {
        let bench = quick_bench();
        let rows = table3_policies(bench);
        let get = |name: &str| rows.iter().find(|r| r.policy == name).unwrap().accuracy;
        let min = get("min (A4W8)");
        let s_a = get("S+A");
        let a8w8 = get("A8W8");
        // On the small held-out split one misclassified image is ~1.5%, so the
        // orderings are asserted with a small tolerance rather than strictly.
        assert!(
            s_a + 0.1 >= min,
            "S+A ({s_a}) should not fall well below the A4W8 floor ({min})"
        );
        assert!(
            a8w8 + 0.1 >= s_a,
            "A8W8 ({a8w8}) should not fall well below S+A ({s_a})"
        );
        // 2T SySMT with S+A stays close to the 8-bit baseline (paper: <1%).
        assert!(a8w8 - s_a <= 0.15, "S+A dropped too far: {s_a} vs {a8w8}");
        // Every policy keeps the model well above chance (1/6 classes).
        for r in &rows {
            assert!(
                r.accuracy > 0.4,
                "{}: accuracy collapsed to {}",
                r.policy,
                r.accuracy
            );
        }
    }

    #[test]
    fn table4_sysmt_beats_static_4bit_quantization() {
        let bench = quick_bench();
        let rows = table4_comparison(bench);
        let get = |name: &str| rows.iter().find(|r| r.method == name).unwrap().accuracy;
        let sysmt = get("2T SySMT (S+A, reorder)");
        let static_a4w4 = get("Static A4W4 (min-max)");
        assert!(
            sysmt + 1e-9 >= static_a4w4,
            "SySMT ({sysmt}) should be at least as accurate as static A4W4 ({static_a4w4})"
        );
    }

    #[test]
    fn table5_slowdowns_trade_speedup_for_accuracy() {
        let bench = quick_bench();
        let rows = table5_slowdown(bench);
        assert_eq!(rows.len(), 3);
        assert!(
            (rows[0].speedup - 4.0).abs() < 0.5,
            "uniform 4T speedup ~4x"
        );
        // Speedup decreases as layers are slowed.
        assert!(rows[1].speedup <= rows[0].speedup + 1e-9);
        assert!(rows[2].speedup <= rows[1].speedup + 1e-9);
        // Accuracy does not collapse when layers are slowed down.
        assert!(rows[2].accuracy + 0.2 >= rows[0].accuracy);
    }

    #[test]
    fn mlperf_mobilenet_speedup_is_close_to_two() {
        let row = mlperf_mobilenet();
        assert!(
            row.speedup > 1.8 && row.speedup < 2.0,
            "speedup {} should approach 2x since pointwise convs dominate",
            row.speedup
        );
        assert!(row.fraction_at_2t > 0.85);
    }
}
