//! Experiment implementations, one function per table / figure of the paper.
//!
//! The mapping between paper artefacts and functions is documented in
//! ARCHITECTURE.md (the experiment-harness table); results are recorded in
//! EXPERIMENTS.md.

pub mod accuracy;
pub mod control_exp;
pub mod faults_exp;
pub mod hw_exp;
pub mod obs_exp;
pub mod registry;
pub mod scale_exp;
pub mod serve_exp;
pub mod zoo_exp;
