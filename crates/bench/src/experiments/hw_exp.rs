//! Hardware-table experiments: Table II (design parameters) and the
//! utilization-sweep power testbench backing it.

use serde::{Deserialize, Serialize};

use nbsmt_hw::power::{power_model, utilization_sweep, TestbenchRow};
use nbsmt_hw::table2::{design_parameters, DesignPoint};

/// One row of the regenerated Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Design label ("SA", "2T SySMT", "4T SySMT").
    pub design: String,
    /// Peak throughput in GMAC/s.
    pub throughput_gmacs: f64,
    /// Power at 80 % utilization in mW.
    pub power_mw_at_80: f64,
    /// Total core area in mm².
    pub total_area_mm2: f64,
    /// Area ratio relative to the baseline array.
    pub area_ratio: f64,
    /// PE area in µm².
    pub pe_area_um2: f64,
    /// MAC area in µm².
    pub mac_area_um2: f64,
}

/// Regenerates Table II from the design-parameter database and the fitted
/// power model (the 80 % power column is *recomputed* from the model, not
/// copied, so it exercises the fit).
pub fn table2_rows() -> Vec<Table2Row> {
    DesignPoint::all()
        .iter()
        .map(|&point| {
            let p = design_parameters(point);
            Table2Row {
                design: point.label().to_string(),
                throughput_gmacs: p.throughput_gmacs,
                power_mw_at_80: power_model(point).power_mw(0.8),
                total_area_mm2: p.total_area_mm2,
                area_ratio: p.area_ratio_vs_baseline(),
                pe_area_um2: p.pe_area_um2,
                mac_area_um2: p.mac_area_um2,
            }
        })
        .collect()
}

/// Runs the synthetic power testbench sweep (the data behind the §V-A power
/// discussion).
pub fn power_testbench(steps: usize) -> Vec<TestbenchRow> {
    utilization_sweep(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_published_power_and_area() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 3);
        let sa = &rows[0];
        assert!((sa.power_mw_at_80 - 320.0).abs() < 1e-6);
        assert!((sa.total_area_mm2 - 0.220).abs() < 1e-9);
        let t2 = &rows[1];
        assert!((t2.power_mw_at_80 - 429.0).abs() < 1e-6);
        assert!((t2.area_ratio - 1.44).abs() < 0.05);
        let t4 = &rows[2];
        assert!((t4.power_mw_at_80 - 723.0).abs() < 1e-6);
        assert!((t4.throughput_gmacs - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn power_testbench_has_monotone_columns() {
        let rows = power_testbench(20);
        assert_eq!(rows.len(), 21);
        for w in rows.windows(2) {
            assert!(w[1].baseline_mw >= w[0].baseline_mw);
            assert!(w[1].sysmt2_mw >= w[0].sysmt2_mw);
            assert!(w[1].sysmt4_mw >= w[0].sysmt4_mw);
        }
    }
}
