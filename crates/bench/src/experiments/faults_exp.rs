//! The `repro faults` experiment: availability under injected failures.
//!
//! Two row families share one fixture (the same trained SynthNet and
//! dense/2T/4T ladder as the `serve`/`shard` sweeps):
//!
//! * **Intensity sweep (`sim` rows).** A seeded [`FaultConfig`] is scaled to
//!   0×/1×/2×/4× the spec's per-mille failure rates, a [`FaultPlan`] is
//!   generated per intensity, and each plan replays through the
//!   deterministic virtual-clock simulator with the design point pinned
//!   dense and with the adaptive dense→2T→4T ladder. These rows — and the
//!   `BENCH_faults.json` records they feed — are bit-reproducible: they show
//!   availability, shed rate, and tail latency degrading with failure
//!   intensity, and how much of it the adaptive ladder buys back.
//!
//! * **Countermeasure A/B (`live` rows).** Every schedule of the committed
//!   [`chaos_corpus`] runs twice on the *threaded* pool
//!   ([`ReplicaPool::start_with_faults`]): once with a bare client (no
//!   retry, no hedge — every cancellation is a lost request) and once with
//!   the [`FaultClient`] countermeasures (exponential-backoff retry plus
//!   straggler hedging at 2× the wall-clock p95 of a measured fault-free
//!   reference cell). The acceptance criterion of the whole experiment is
//!   the per-schedule inequality `completed(countermeasures) ≥
//!   completed(baseline)`.
//!
//! Live rows measure a real threaded pool, so their latency columns are
//! wall-clock (not virtual) and the record names carry the `live` marker to
//! keep them from being mistaken for the reproducible `sim` family.

use std::sync::Arc;

use nbsmt_serve::config::{
    AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig, SmtConfig,
};
use nbsmt_serve::faults::{
    chaos_corpus, FaultClient, FaultConfig, FaultPlan, HedgePolicy, RetryPolicy,
};
use nbsmt_serve::pool::ReplicaPool;
use nbsmt_serve::session::Session;
use nbsmt_serve::sim::simulate_pool_faulted;
use nbsmt_tensor::tensor::Tensor;

use crate::experiments::serve_exp::SweepFixture;
use crate::loadgen::open_poisson;
use crate::scale::{ExecSettings, Scale};
use crate::summary::{FaultRecord, FaultSummary};

/// Replica count of every cell: the committed chaos corpus is authored for
/// two replicas (crash + survivor), and the intensity sweep uses the same
/// pool shape so its rows are comparable.
const REPLICAS: usize = 2;

/// Intensity multipliers applied to the spec's per-mille failure rates.
const INTENSITIES: [u64; 4] = [0, 1, 2, 4];

/// Knobs of the sweep that come from the [`crate::spec::RunSpec`].
#[derive(Debug, Clone, Copy)]
pub struct FaultKnobs {
    /// Seed of the generated fault plans (`fault_seed`).
    pub fault_seed: u64,
    /// Base per-mille crash rate, scaled by [`INTENSITIES`].
    pub crash_per_mille: u64,
    /// Base per-mille stall rate.
    pub stall_per_mille: u64,
    /// Base per-mille straggle rate.
    pub straggle_per_mille: u64,
    /// Whether the countermeasure cells hedge (`false` = retry only).
    pub hedging: bool,
}

/// One row of the faults sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Schedule id: a [`chaos_corpus`] name or `gen-x<intensity>`.
    pub schedule: String,
    /// Execution family: `sim` (virtual clock, bit-reproducible) or `live`
    /// (threaded pool, wall clock).
    pub mode: &'static str,
    /// Design-point selection: `pinned` (dense rung 0) or `adaptive`.
    pub policy: &'static str,
    /// Client countermeasures: `none`, `retry`, or `retry+hedge` (`-` for
    /// sim rows, which have no client loop).
    pub cm: &'static str,
    /// Requests issued.
    pub requests: u64,
    /// Requests that received a response.
    pub completed: u64,
    /// Requests lost: shed by admission control, cancelled by a crash, or
    /// abandoned by the client after its retry budget.
    pub failed: u64,
    /// completed / requests.
    pub availability: f64,
    /// 95th-percentile latency [ms] (virtual for sim, wall for live).
    pub p95_ms: f64,
    /// 99th-percentile latency [ms].
    pub p99_ms: f64,
    /// Injected replica crashes.
    pub crashes: u64,
    /// Requests handed off from crashed replicas to survivors.
    pub handoffs: u64,
    /// Client re-submissions (live rows).
    pub retries: u64,
    /// Hedge duplicates submitted (live rows).
    pub hedges: u64,
    /// Calls won by the hedge leg (live rows).
    pub hedge_wins: u64,
}

impl FaultRow {
    /// The record id used in `BENCH_faults.json` (merge key across runs).
    pub fn record_name(&self) -> String {
        format!(
            "faults_{}_{}_{}_{}_n{}",
            self.schedule, self.mode, self.policy, self.cm, self.requests
        )
    }
}

/// The faults sweep at the given scale and host-execution settings: the
/// deterministic intensity family plus the live countermeasure A/B over the
/// committed chaos corpus.
pub fn faults_sweep_with(
    scale: Scale,
    exec: &ExecSettings,
    requests: usize,
    seed: u64,
    knobs: FaultKnobs,
) -> Vec<FaultRow> {
    let fixture = SweepFixture::prepare(scale, requests, seed);
    let ladder = fixture
        .registry
        .compile_ladder(
            "synthnet",
            &[
                SmtConfig::Dense,
                SmtConfig::sysmt_2t(),
                SmtConfig::sysmt_4t(),
            ],
        )
        .expect("ladder compiles");

    let mut rows = intensity_rows(&fixture, &ladder, exec, requests, seed, knobs);
    rows.extend(corpus_rows(&fixture, &ladder, exec, requests, knobs));
    rows
}

/// Escalate on queue depth well before admission control engages — the same
/// trigger shape as the shard sweep's.
fn adaptive_policy() -> AdaptivePolicy {
    AdaptivePolicy {
        depth_high: 4,
        depth_low: 1,
        p95_high_ns: 0,
        eval_every_batches: 1,
    }
}

fn pool_config(adaptive: AdaptivePolicy) -> PoolConfig {
    PoolConfig {
        replicas: REPLICAS,
        route: RoutePolicy::RoundRobin,
        // The batch-formation window must cover a full closed-loop client
        // round trip (response → resubmission, including the hedge path's
        // ~1ms poll quantum), or survivor batches launch half-empty and the
        // capacity-limited schedules lose exactly those slots.
        scheduler: SchedulerConfig {
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_ns: 2_000_000,
            },
            queue_capacity: 16,
        },
        adaptive,
    }
}

/// The deterministic intensity family: generated plans at scaled rates ×
/// {pinned, adaptive}, replayed in the virtual-clock simulator.
fn intensity_rows(
    fixture: &SweepFixture,
    ladder: &[Arc<Session>],
    exec: &ExecSettings,
    requests: usize,
    seed: u64,
    knobs: FaultKnobs,
) -> Vec<FaultRow> {
    let ctx = exec.context();
    // 1.2× the aggregate dense rate: loaded enough that stalls and
    // stragglers push on the tail, not so overloaded that the no-fault
    // baseline already sheds heavily.
    let rate = fixture.dense_rate_rps() * REPLICAS as f64 * 1.2;
    let arrivals = open_poisson(seed.wrapping_add(13), rate, requests);

    let mut rows = Vec::new();
    for intensity in INTENSITIES {
        let config = FaultConfig {
            seed: knobs.fault_seed,
            horizon_batches: 64,
            crash_per_mille: (knobs.crash_per_mille * intensity).min(1000),
            stall_per_mille: (knobs.stall_per_mille * intensity).min(1000),
            straggle_per_mille: (knobs.straggle_per_mille * intensity).min(1000),
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&config, REPLICAS).expect("scaled rates stay per-mille");
        for (policy_label, ladder_slice, policy) in [
            ("pinned", &ladder[..1], AdaptivePolicy::pinned()),
            ("adaptive", ladder, adaptive_policy()),
        ] {
            let outcome = simulate_pool_faulted(
                ladder_slice,
                &ctx,
                &fixture.inputs,
                &arrivals,
                pool_config(policy),
                fixture.service,
                Some(&plan),
            )
            .expect("pool simulation succeeds");
            let m = &outcome.metrics;
            rows.push(FaultRow {
                schedule: format!("gen-x{intensity}"),
                mode: "sim",
                policy: policy_label,
                cm: "-",
                requests: requests as u64,
                completed: m.completed,
                failed: requests as u64 - m.completed,
                availability: m.completed as f64 / requests as f64,
                p95_ms: m.p95_ns as f64 / 1e6,
                p99_ms: m.p99_ns as f64 / 1e6,
                crashes: m.crashes,
                handoffs: m.handoffs,
                retries: 0,
                hedges: 0,
                hedge_wins: 0,
            });
        }
    }
    rows
}

/// The live countermeasure A/B: every corpus schedule on the threaded pool,
/// bare client vs retry(+hedge).
fn corpus_rows(
    fixture: &SweepFixture,
    ladder: &[Arc<Session>],
    exec: &ExecSettings,
    requests: usize,
    knobs: FaultKnobs,
) -> Vec<FaultRow> {
    let cm_label: &'static str = if knobs.hedging {
        "retry+hedge"
    } else {
        "retry"
    };
    let mut rows = Vec::new();
    // One fault-free reference cell calibrates the hedge delay: hedging at
    // 2× the *healthy* wall-clock tail fires only on requests that are
    // genuinely stuck (behind a stalled or dead replica), never on the
    // normal tail — hedging earlier floods the scarce batch slots with
    // duplicate legs and *lowers* distinct completions. Deriving it from
    // each schedule's own faulted baseline would be wrong the other way: a
    // stall inflates that baseline's p95 past the very latency the hedge is
    // meant to cut.
    let healthy = live_cell(
        fixture,
        ladder,
        exec,
        requests,
        "fault-free",
        &FaultPlan::none(),
        "none",
        RetryPolicy {
            max_retries: 0,
            backoff_base_ns: 1,
        },
        None,
    );
    let hedge_delay_ns = ((2.0 * healthy.p95_ms * 1e6) as u64).max(1);
    rows.push(healthy);
    for (name, plan) in chaos_corpus() {
        let base = live_cell(
            fixture,
            ladder,
            exec,
            requests,
            name,
            &plan,
            "none",
            RetryPolicy {
                max_retries: 0,
                backoff_base_ns: 1,
            },
            None,
        );
        let countered = live_cell(
            fixture,
            ladder,
            exec,
            requests,
            name,
            &plan,
            cm_label,
            // A small base backoff: long sleeps would starve batch
            // formation on the survivor and shrink the very batches the
            // retries are trying to ride in on.
            RetryPolicy {
                max_retries: 6,
                backoff_base_ns: 20_000,
            },
            knobs.hedging.then_some(HedgePolicy {
                delay_ns: hedge_delay_ns,
            }),
        );
        rows.push(base);
        rows.push(countered);
    }
    rows
}

/// Runs one live pool under `plan` with `clients` closed-loop fault-client
/// threads and folds the client and pool views into a row.
#[allow(clippy::too_many_arguments)]
fn live_cell(
    fixture: &SweepFixture,
    ladder: &[Arc<Session>],
    exec: &ExecSettings,
    requests: usize,
    schedule: &str,
    plan: &FaultPlan,
    cm: &'static str,
    retry: RetryPolicy,
    hedge: Option<HedgePolicy>,
) -> FaultRow {
    let pool = ReplicaPool::start_with_faults(
        ladder.to_vec(),
        pool_config(adaptive_policy()),
        exec.config(),
        plan,
        fixture.service,
    )
    .expect("pool starts");

    let clients = 8usize;
    let per_client = requests.div_ceil(clients);
    let mut stats = Vec::new();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..clients {
            let client = pool.client();
            let inputs: &[Tensor<f32>] = &fixture.inputs;
            workers.push(scope.spawn(move || {
                let mut fc = FaultClient::new(client, retry, hedge);
                let start = t * per_client;
                let end = requests.min(start + per_client);
                for i in start..end {
                    let _ = fc.call(i as u64, &inputs[i % inputs.len()]);
                }
                fc.stats()
            }));
        }
        for worker in workers {
            stats.push(worker.join().expect("client thread completes"));
        }
    });
    let snapshot = pool.shutdown();

    let completed: u64 = stats.iter().map(|s| s.completed).sum();
    let failed: u64 = stats.iter().map(|s| s.failed).sum();
    FaultRow {
        schedule: schedule.to_string(),
        mode: "live",
        policy: "adaptive",
        cm,
        requests: requests as u64,
        completed,
        failed,
        availability: completed as f64 / requests as f64,
        p95_ms: snapshot.total.p95_ns as f64 / 1e6,
        p99_ms: snapshot.total.p99_ns as f64 / 1e6,
        crashes: snapshot.total.crashes,
        handoffs: snapshot.total.handoffs,
        retries: stats.iter().map(|s| s.retries).sum(),
        hedges: stats.iter().map(|s| s.hedges).sum(),
        hedge_wins: stats.iter().map(|s| s.hedge_wins).sum(),
    }
}

/// Converts sweep rows into the `BENCH_faults.json` summary.
pub fn faults_summary(rows: &[FaultRow]) -> FaultSummary {
    let mut summary = FaultSummary::new();
    for row in rows {
        summary.push(FaultRecord {
            name: row.record_name(),
            schedule: row.schedule.clone(),
            mode: row.mode.to_string(),
            policy: row.policy.to_string(),
            cm: row.cm.to_string(),
            requests: row.requests,
            completed: row.completed,
            failed: row.failed,
            availability: row.availability,
            p95_ms: row.p95_ms,
            p99_ms: row.p99_ms,
            crashes: row.crashes,
            handoffs: row.handoffs,
            retries: row.retries,
            hedges: row.hedges,
            hedge_wins: row.hedge_wins,
        });
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> FaultKnobs {
        FaultKnobs {
            fault_seed: 2024,
            crash_per_mille: 30,
            stall_per_mille: 60,
            straggle_per_mille: 90,
            hedging: true,
        }
    }

    #[test]
    fn intensity_family_is_deterministic_and_degrades_monotonically_in_spirit() {
        let exec = ExecSettings::sequential();
        let fixture = SweepFixture::prepare(Scale::Quick, 48, 2024);
        let ladder = fixture
            .registry
            .compile_ladder(
                "synthnet",
                &[
                    SmtConfig::Dense,
                    SmtConfig::sysmt_2t(),
                    SmtConfig::sysmt_4t(),
                ],
            )
            .expect("ladder compiles");
        let rows = intensity_rows(&fixture, &ladder, &exec, 48, 2024, knobs());
        // 4 intensities × {pinned, adaptive}.
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.mode, "sim");
            assert_eq!(row.completed + row.failed, row.requests);
            assert!((0.0..=1.0).contains(&row.availability));
        }
        // Intensity 0 is the fault-free baseline: no crashes, no handoffs.
        for row in rows.iter().take(2) {
            assert_eq!((row.crashes, row.handoffs), (0, 0));
        }
        // Bit-identical on a re-run: the family is fully virtual-clocked.
        let again = intensity_rows(&fixture, &ladder, &exec, 48, 2024, knobs());
        assert_eq!(rows, again);
        // Record names are unique merge keys.
        let mut names: Vec<String> = rows.iter().map(FaultRow::record_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rows.len());
    }

    #[test]
    fn countermeasures_recover_at_least_the_bare_client_on_every_schedule() {
        let exec = ExecSettings::sequential();
        let rows = faults_sweep_with(Scale::Quick, &exec, 48, 2024, knobs());
        let live: Vec<&FaultRow> = rows.iter().filter(|r| r.mode == "live").collect();
        // The fault-free reference cell plus 6 corpus schedules ×
        // {none, retry+hedge}.
        assert_eq!(live.len(), 13);
        let healthy = live
            .iter()
            .find(|r| r.schedule == "fault-free")
            .expect("reference cell exists");
        assert_eq!(healthy.completed, healthy.requests, "no faults, no losses");
        for (name, _) in chaos_corpus() {
            let cell = |cm: &str| {
                live.iter()
                    .find(|r| r.schedule == name && r.cm == cm)
                    .unwrap_or_else(|| panic!("cell {name}/{cm} exists"))
            };
            let base = cell("none");
            let countered = cell("retry+hedge");
            // Once no replica admits work (both crashed, or the survivor has
            // closed admissions) the completion capacity is the batch count
            // before the outage — a wall-clock near-tie either way — so the
            // strict inequality is asserted only where an admitting survivor
            // exists for the retries to land on.
            if name != "double-crash-cascade" && name != "closed-survivor-sheds" {
                assert!(
                    countered.completed >= base.completed,
                    "{name}: countermeasures completed {} < baseline {}",
                    countered.completed,
                    base.completed
                );
            }
            assert_eq!(base.completed + base.failed, base.requests);
            assert_eq!(countered.completed + countered.failed, countered.requests);
        }
        // Schedules that keep an *admitting* survivor recover everything
        // under retry+hedge; the full-outage cascade and the closed-survivor
        // schedule (no replica left to retry into) are allowed to lose
        // requests.
        for (name, _) in chaos_corpus() {
            if name != "double-crash-cascade" && name != "closed-survivor-sheds" {
                let row = live
                    .iter()
                    .find(|r| r.schedule == name && r.cm == "retry+hedge")
                    .expect("cell exists");
                assert_eq!(
                    row.completed, row.requests,
                    "{name}: a survivor exists, retries must recover every request"
                );
            }
        }
    }
}
