//! The `repro obs` experiment: what does end-to-end tracing cost?
//!
//! Tracing is only trustworthy if it is cheap enough to leave on, so this
//! experiment measures exactly that: the same seeded arrival trace is
//! replayed through the virtual-clock pool simulator twice — once with the
//! recorder off, once recording every submit → queue-wait → batch → kernel →
//! service → respond event — and the wall-clock difference is the tracing
//! overhead. Both cells execute the model for real on the host execution
//! layer; only the recorder differs. The committed `BENCH_obs.json` tracks
//! both timings, and the acceptance bar is recorder-on within a few percent
//! of recorder-off.
//!
//! The run also doubles as an end-to-end check of the trace pipeline: the
//! traced outcome's snapshot is exported through
//! [`crate::trace_export::render_chrome_trace`], re-run, and asserted
//! byte-identical — the same determinism contract the serve tests hold the
//! lockstep pool to.

use nbsmt_serve::config::SmtConfig;
use nbsmt_serve::config::{AdaptivePolicy, BatchPolicy, PoolConfig, RoutePolicy, SchedulerConfig};
use nbsmt_serve::session::Session;
use nbsmt_serve::sim::{simulate_pool_traced, ArrivalProcess, PoolSimOutcome, ServiceModel};
use nbsmt_serve::{TraceRecorder, TraceSnapshot};
use nbsmt_tensor::exec::ExecContext;
use nbsmt_tensor::tensor::Tensor;
use std::sync::Arc;

use crate::experiments::serve_exp::SweepFixture;
use crate::loadgen::open_poisson;
use crate::scale::{ExecSettings, Scale};

/// A prepared tracing-overhead cell: one trained model ladder, one seeded
/// arrival trace, one pool configuration. [`ObsBench::run_off`] and
/// [`ObsBench::run_traced`] replay the *identical* workload, so their
/// wall-clock difference isolates the recorder.
pub struct ObsBench {
    ladder: Vec<Arc<Session>>,
    ctx: ExecContext,
    inputs: Vec<Tensor<f32>>,
    arrivals: ArrivalProcess,
    pool: PoolConfig,
    service: ServiceModel,
}

impl ObsBench {
    /// Trains and calibrates the SynthNet fixture, compiles the dense→2T→4T
    /// ladder, and generates an open-loop Poisson trace at 2.0× the pool's
    /// aggregate dense service rate — overloaded enough that the adaptive
    /// ladder climbs and the trace contains mode transitions worth seeing.
    pub fn prepare(scale: Scale, exec: &ExecSettings, requests: usize, seed: u64) -> ObsBench {
        let fixture = SweepFixture::prepare(scale, requests, seed);
        let ladder = fixture
            .registry
            .compile_ladder(
                "synthnet",
                &[
                    SmtConfig::Dense,
                    SmtConfig::sysmt_2t(),
                    SmtConfig::sysmt_4t(),
                ],
            )
            .expect("ladder compiles");
        let replicas = 2usize;
        let rate = fixture.dense_rate_rps() * replicas as f64 * 2.0;
        let arrivals = open_poisson(seed.wrapping_add(20), rate, requests);
        let pool = PoolConfig {
            replicas,
            route: RoutePolicy::RoundRobin,
            scheduler: SchedulerConfig {
                batch: BatchPolicy {
                    max_batch: 8,
                    max_wait_ns: 2_000_000,
                },
                queue_capacity: 16,
            },
            adaptive: AdaptivePolicy {
                depth_high: 4,
                depth_low: 1,
                p95_high_ns: 0,
                eval_every_batches: 1,
            },
        };
        ObsBench {
            ladder,
            ctx: exec.context(),
            inputs: fixture.inputs,
            arrivals,
            pool,
            service: fixture.service,
        }
    }

    /// One full simulation with the recorder off — the baseline cell.
    pub fn run_off(&self) -> PoolSimOutcome {
        simulate_pool_traced(
            &self.ladder,
            &self.ctx,
            &self.inputs,
            &self.arrivals,
            self.pool,
            self.service,
            None,
            None,
        )
        .expect("pool simulation succeeds")
    }

    /// One full simulation recording every pipeline event — the traced cell.
    pub fn run_traced(&self) -> (PoolSimOutcome, TraceSnapshot) {
        let recorder = TraceRecorder::virtual_clock();
        let outcome = simulate_pool_traced(
            &self.ladder,
            &self.ctx,
            &self.inputs,
            &self.arrivals,
            self.pool,
            self.service,
            None,
            Some(&recorder),
        )
        .expect("pool simulation succeeds");
        (outcome, recorder.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_export::render_chrome_trace;
    use nbsmt_serve::TraceStage;

    #[test]
    fn traced_run_is_byte_deterministic_and_complete() {
        let exec = ExecSettings::sequential();
        let bench = ObsBench::prepare(Scale::Quick, &exec, 48, 2024);
        let (outcome, snapshot) = bench.run_traced();
        let (again_outcome, again_snapshot) = bench.run_traced();
        assert_eq!(outcome.metrics, again_outcome.metrics);
        assert_eq!(
            render_chrome_trace(&snapshot),
            render_chrome_trace(&again_snapshot),
            "identical seeded runs must export byte-identical traces"
        );
        // Tracing never changes what the simulation computes.
        let off = bench.run_off();
        assert_eq!(off.metrics, outcome.metrics);
        assert_eq!(off.responses, outcome.responses);
        // Every completed request has its full submit → respond chain.
        let responds: Vec<u64> = snapshot
            .events
            .iter()
            .filter(|e| e.stage == TraceStage::Respond)
            .map(|e| e.request.expect("respond carries a request"))
            .collect();
        assert_eq!(responds.len() as u64, outcome.metrics.completed);
        for stage in [
            TraceStage::Submit,
            TraceStage::QueueWait,
            TraceStage::Service,
        ] {
            for &request in &responds {
                assert!(
                    snapshot
                        .events
                        .iter()
                        .any(|e| e.stage == stage && e.request == Some(request)),
                    "request {request} is missing its {} event",
                    stage.name()
                );
            }
        }
        // The overloaded adaptive pool produces kernel spans with PE stats.
        assert!(snapshot
            .events
            .iter()
            .any(|e| e.stage == TraceStage::Kernel && e.stats.is_some()));
        assert_eq!(snapshot.dropped, 0);
    }
}
