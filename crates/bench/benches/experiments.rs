//! Criterion benches: one benchmark per table / figure of the paper, timing
//! the experiment kernel that regenerates it (at quick scale), plus
//! micro-benchmarks and ablations of the core NB-SMT datapath.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use nbsmt_bench::experiments::accuracy::{
    fig7_robustness, mlperf_mobilenet, table3_policies, table4_comparison, table5_slowdown,
    AccuracyBench,
};
use nbsmt_bench::experiments::hw_exp::{power_testbench, table2_rows};
use nbsmt_bench::experiments::zoo_exp::{
    energy_savings, fig1_utilization, fig8_mse_vs_sparsity, fig9_utilization_gain, table1_inventory,
};
use nbsmt_bench::Scale;
use nbsmt_core::fmul::{DualLane, FlexMultiplier, FlexMultiplier4};
use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_core::policy::SharingPolicy;
use nbsmt_core::ThreadCount;
use nbsmt_quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_quant::scheme::QuantScheme;
use nbsmt_serve::config::SmtConfig;
use nbsmt_serve::registry::ModelRegistry;
use nbsmt_systolic::array::{OutputStationaryArray, SystolicConfig};
use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackendKind};
use nbsmt_tensor::ops;
use nbsmt_tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_tensor::tensor::Matrix;
use nbsmt_workloads::synthnet::quick_synthnet;

fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// Builds one representative quantized layer for the datapath benches.
fn sample_layer(
    m: usize,
    k: usize,
    n: usize,
) -> (
    nbsmt_quant::qtensor::QuantMatrix,
    nbsmt_quant::qtensor::QuantWeightMatrix,
) {
    let mut synth = TensorSynthesizer::new(99);
    let x = synth.tensor(&SynthesisConfig::activation(0.4, 0.5), &[m, k]);
    let w = synth.tensor(&SynthesisConfig::weight(0.12, 0.0), &[k, n]);
    let qx = quantize_activations(
        &Matrix::from_vec(x.into_vec(), m, k).unwrap(),
        &QuantScheme::activation_a8(),
        Some((0.0, 1.0)),
    );
    let qw = quantize_weights(
        &Matrix::from_vec(w.into_vec(), k, n).unwrap(),
        &QuantScheme::weight_w8(),
    );
    (qx, qw)
}

/// Micro-benchmark and correctness ablation of the flexible multiplier
/// decompositions (Eq. 4 / Eq. 5) versus a plain wide multiply.
fn bench_fmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmul");
    let fm2 = FlexMultiplier::new();
    let fm4 = FlexMultiplier4::new();
    group.bench_function("eq4_single_8b8b", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in (0..=255u8).step_by(3) {
                for w in (-128i8..=127).step_by(5) {
                    acc += fm2.mul_single(std::hint::black_box(x), std::hint::black_box(w)) as i64;
                }
            }
            acc
        })
    });
    group.bench_function("eq5_single_8b8b", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in (0..=255u8).step_by(3) {
                for w in (-128i8..=127).step_by(5) {
                    acc += fm4.mul_single(std::hint::black_box(x), std::hint::black_box(w)) as i64;
                }
            }
            acc
        })
    });
    group.bench_function("naive_wide_multiply", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in (0..=255u8).step_by(3) {
                for w in (-128i8..=127).step_by(5) {
                    acc += std::hint::black_box(x) as i64 * std::hint::black_box(w) as i64;
                }
            }
            acc
        })
    });
    group.bench_function("eq4_dual_lane", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in (0..=15u8).step_by(1) {
                for w in (-128i8..=127).step_by(7) {
                    let out = fm2.mul_dual([
                        DualLane {
                            x_nibble: x,
                            w,
                            shift: true,
                        },
                        DualLane {
                            x_nibble: 15 - x,
                            w,
                            shift: false,
                        },
                    ]);
                    acc += (out[0] + out[1]) as i64;
                }
            }
            acc
        })
    });
    group.finish();
}

/// Benchmarks the execution-layer GEMM backends against the seed scalar
/// path on a 512×512×512 i32 GEMM: `naive` (the seed loop through the
/// context), `blocked` (cache-tiled), and `parallel` at 2 and 8 worker
/// threads. The acceptance target for the layer is `parallel_512_8t` ≥ 3×
/// the seed path on an 8-core host; all variants are bit-exact.
fn bench_gemm_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_backends");
    group.sample_size(10);
    let dim = 512usize;
    let mut synth = TensorSynthesizer::new(7);
    let to_i32 = |t: nbsmt_tensor::tensor::Tensor<f32>| {
        Matrix::from_vec(
            t.into_vec().iter().map(|&v| (v * 127.0) as i32).collect(),
            dim,
            dim,
        )
        .unwrap()
    };
    let a = to_i32(synth.tensor(&SynthesisConfig::activation(0.5, 0.5), &[dim, dim]));
    let b = to_i32(synth.tensor(&SynthesisConfig::weight(0.3, 0.0), &[dim, dim]));

    group.bench_function("seed_scalar_512", |bch| {
        bch.iter(|| ops::matmul_i32(&a, &b).unwrap())
    });
    let ctx_for = |threads: usize, backend: GemmBackendKind| {
        ExecContext::new(ExecConfig {
            threads,
            backend,
            ..ExecConfig::default()
        })
    };
    for (name, threads, backend) in [
        ("naive_512", 1, GemmBackendKind::Naive),
        ("blocked_512_1t", 1, GemmBackendKind::Blocked),
        ("simd_512_1t", 1, GemmBackendKind::Simd),
        ("packed_512_1t", 1, GemmBackendKind::Packed),
        ("parallel_512_2t", 2, GemmBackendKind::Parallel),
        ("parallel_512_8t", 8, GemmBackendKind::Parallel),
    ] {
        let ctx = ctx_for(threads, backend);
        group.bench_function(name, |bch| {
            bch.iter(|| ops::matmul_i32_with(&ctx, &a, &b).unwrap())
        });
    }
    group.finish();
}

/// Benchmarks the NB-SMT layer emulation (2T and 4T) on the parallel
/// execution layer at 1 vs 8 host worker threads — the path the accuracy
/// sweeps are wall-clock-bound by.
fn bench_nbsmt_parallel_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbsmt_parallel_layer");
    group.sample_size(10);
    let (qx, qw) = sample_layer(128, 256, 64);
    for (name, smt_threads, host_threads) in [
        ("nbsmt_2t_layer_1t", ThreadCount::Two, 1usize),
        ("nbsmt_2t_layer_8t", ThreadCount::Two, 8),
        ("nbsmt_4t_layer_1t", ThreadCount::Four, 1),
        ("nbsmt_4t_layer_8t", ThreadCount::Four, 8),
    ] {
        let ctx = ExecContext::with_threads(host_threads);
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: smt_threads,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        group.bench_function(name, |bch| {
            bch.iter(|| emu.execute_with(&ctx, &qx, &qw).unwrap())
        });
    }
    group.finish();
}

/// Benchmarks the algorithmic fast NB-SMT path (the default `execute_with`)
/// against the event-walking oracle (`execute_event_with`) on the same
/// 128×256×64 layer the parallel-layer group uses — the speedup the fast
/// path exists to deliver, at 2T and 4T.
fn bench_nbsmt_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbsmt_fast_path");
    group.sample_size(10);
    let (qx, qw) = sample_layer(128, 256, 64);
    let ctx = ExecContext::sequential();
    for (label, threads) in [("2t", ThreadCount::Two), ("4t", ThreadCount::Four)] {
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads,
            policy: SharingPolicy::S_A,
            reorder: false,
        });
        group.bench_function(&format!("event_{label}_128x256x64"), |bch| {
            bch.iter(|| emu.execute_event_with(&ctx, &qx, &qw).unwrap())
        });
        group.bench_function(&format!("fast_{label}_128x256x64"), |bch| {
            bch.iter(|| emu.execute_with(&ctx, &qx, &qw).unwrap())
        });
    }
    group.finish();
}

/// Benchmarks the cycle-level baseline systolic array and the NB-SMT matmul
/// emulation at 1, 2, and 4 threads (the datapaths behind every experiment).
fn bench_datapaths(c: &mut Criterion) {
    let mut group = c.benchmark_group("datapaths");
    let (qx, qw) = sample_layer(64, 128, 32);
    group.bench_function("systolic_baseline_cycle_level", |b| {
        b.iter_batched(
            || OutputStationaryArray::new(SystolicConfig::new(16, 16)),
            |array| array.matmul(qx.values(), qw.values()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    for (name, threads) in [
        ("nbsmt_1t", ThreadCount::One),
        ("nbsmt_2t", ThreadCount::Two),
        ("nbsmt_4t", ThreadCount::Four),
    ] {
        group.bench_function(name, |b| {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads,
                policy: SharingPolicy::S_A,
                reorder: false,
            });
            b.iter(|| emu.execute(&qx, &qw).unwrap())
        });
    }
    // Ablation: output-sharing policies (reorder on/off).
    group.bench_function("nbsmt_2t_with_reorder", |b| {
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads: ThreadCount::Two,
            policy: SharingPolicy::S_A,
            reorder: true,
        });
        b.iter(|| emu.execute(&qx, &qw).unwrap())
    });
    group.finish();
}

/// One bench per zoo-model table/figure (Fig. 1, Table I, Table II, Fig. 8,
/// Fig. 9, energy).
fn bench_zoo_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("zoo_experiments");
    group.bench_function("table1_inventory", |b| b.iter(table1_inventory));
    group.bench_function("table2_hw", |b| {
        b.iter(|| {
            let rows = table2_rows();
            let sweep = power_testbench(10);
            (rows, sweep)
        })
    });
    group.bench_function("fig1_utilization", |b| {
        b.iter(|| fig1_utilization(Scale::Quick))
    });
    group.bench_function("fig8_mse_vs_sparsity", |b| {
        b.iter(|| fig8_mse_vs_sparsity(Scale::Quick))
    });
    group.bench_function("fig9_utilization_gain", |b| {
        b.iter(|| fig9_utilization_gain(Scale::Quick))
    });
    group.bench_function("energy_savings", |b| {
        b.iter(|| energy_savings(Scale::Quick))
    });
    group.bench_function("mlperf_mobilenet", |b| b.iter(mlperf_mobilenet));
    group.finish();
}

/// One bench per accuracy table/figure (Fig. 7, Tables III–V). The trained
/// SynthNet is prepared once outside the timing loop; the benches time the
/// NB-SMT evaluation itself.
fn bench_accuracy_experiments(c: &mut Criterion) {
    let bench = AccuracyBench::prepare(Scale::Quick, 2024);
    let mut group = c.benchmark_group("accuracy_experiments");
    group.sample_size(10);
    group.bench_function("fig7_robustness", |b| b.iter(|| fig7_robustness(&bench)));
    group.bench_function("table3_policies", |b| b.iter(|| table3_policies(&bench)));
    group.bench_function("table4_comparison", |b| {
        b.iter(|| table4_comparison(&bench))
    });
    group.bench_function("table5_slowdown", |b| b.iter(|| table5_slowdown(&bench)));
    group.finish();
}

/// Serving-layer throughput: batched vs unbatched session execution on a
/// SynthNet 2T session at batch sizes 1 / 8 / 32 — the amortization the
/// micro-batching scheduler exists to capture. `unbatched_32` runs the same
/// 32 requests one at a time for the direct comparison.
fn bench_serve_throughput(c: &mut Criterion) {
    let trained = quick_synthnet(77).expect("training succeeds");
    let mut registry = ModelRegistry::new();
    registry
        .register_synthnet("synthnet", &trained, 78)
        .expect("calibration succeeds");
    let session = registry
        .compile("synthnet", SmtConfig::sysmt_2t())
        .expect("session compiles");
    let (inputs, _) = trained.sample_requests(32, 79);
    let ctx = ExecContext::parallel();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for batch in [1usize, 8, 32] {
        group.bench_function(&format!("batched_{batch}"), |b| {
            b.iter(|| session.infer_batch(&ctx, &inputs[..batch]).unwrap())
        });
    }
    group.bench_function("unbatched_32", |b| {
        b.iter(|| {
            for input in &inputs {
                session
                    .infer_batch(&ctx, std::slice::from_ref(input))
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_fmul, bench_gemm_backends, bench_nbsmt_parallel_layer, bench_nbsmt_fast_path,
        bench_datapaths, bench_zoo_experiments, bench_accuracy_experiments, bench_serve_throughput
}
criterion_main!(benches);
