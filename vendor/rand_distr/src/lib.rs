//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the `Distribution` trait and a Box–Muller `Normal` distribution
//! for `f32`/`f64` — the only pieces this workspace uses (see
//! `nbsmt_tensor::random`). Vendored because the build environment has no
//! network access to crates.io.

pub use rand::distributions::Distribution;

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Floating-point scalars the shim's distributions can produce.
pub trait Float: Copy {
    /// Converts from `f64` (used internally by the samplers).
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution; fails when `std_dev` is negative or
    /// either parameter is not finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.to_f64().is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.to_f64().is_finite() || std_dev.to_f64() < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> F {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller transform. `u1` is kept away from zero so the log is
        // finite.
        let bits1 = rng.next_u64() >> 11;
        let u1 = (bits1 as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        let z = r * theta.cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Uniform distribution over `[0, 1)`, matching `rand_distr::Standard` for
/// floats closely enough for this workspace.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl<F: Float> Distribution<F> for StandardUniform {
    fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64((rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let normal = Normal::new(1.5f64, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(f32::NAN, 1.0).is_err());
        assert!(Normal::new(0.0f32, f32::INFINITY).is_err());
        assert!(Normal::new(0.0f32, 0.0).is_ok());
    }
}
