//! Derive macros for the vendored `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits are markers (no methods), so
//! the derive only needs to emit an empty `impl` with the right generics.
//! That keeps the macro small enough to hand-roll on top of `proc_macro`
//! alone — the build environment has no network access, so `syn`/`quote` are
//! not available.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic parameter of the deriving type.
struct GenericParam {
    /// Parameter as it must appear in `impl<...>` (bounds kept, defaults
    /// stripped), e.g. `T: Clone` or `const N: usize` or `'a`.
    decl: String,
    /// Parameter as it must appear in `Type<...>`, e.g. `T`, `N`, `'a`.
    name: String,
}

struct DeriveTarget {
    name: String,
    params: Vec<GenericParam>,
}

/// Extracts the type name and generic parameter list from a derive input.
///
/// Derive inputs are restricted item declarations (`struct` / `enum` /
/// `union` with optional attributes and visibility), so a small hand parser
/// over the top-level token stream is reliable: find the item keyword, take
/// the following identifier, then, if a `<` follows, split the depth-matched
/// generic list on top-level commas.
fn parse_target(input: TokenStream) -> DeriveTarget {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes (`#[...]`, including doc comments) and visibility
    // (`pub`, `pub(...)`).
    let name_idx = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed group
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "pub" {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // `pub(crate)` etc.
                        }
                    }
                } else if word == "struct" || word == "enum" || word == "union" {
                    break i + 1;
                } else {
                    // Unexpected modifier (e.g. future keywords): skip it.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    };

    let name = match &tokens[name_idx] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive input: expected type name, found {other}"),
    };

    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(name_idx + 1) {
        if p.as_char() == '<' {
            let mut depth = 1usize;
            let mut j = name_idx + 2;
            let mut current: Vec<TokenTree> = Vec::new();
            while depth > 0 {
                match &tokens[j] {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push(tokens[j].clone());
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            if !current.is_empty() {
                                params.push(parse_param(&current));
                            }
                        } else {
                            current.push(tokens[j].clone());
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if !current.is_empty() {
                            params.push(parse_param(&current));
                        }
                        current = Vec::new();
                    }
                    t => current.push(t.clone()),
                }
                j += 1;
            }
        }
    }

    DeriveTarget { name, params }
}

/// Parses one generic parameter from its token slice.
fn parse_param(tokens: &[TokenTree]) -> GenericParam {
    // Strip a trailing default (`= ...` at depth 0) — defaults are not
    // allowed in impl generics.
    let mut depth = 0usize;
    let mut end = tokens.len();
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '=' && depth == 0 => {
                // Not `==`, `>=`, `<=`: a lone `=` starts the default.
                end = idx;
                break;
            }
            _ => {}
        }
    }
    let kept = &tokens[..end];
    let decl = kept
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");

    // The parameter name: `'a` for lifetimes, the identifier after `const`
    // for const params, the first identifier otherwise.
    let name = match kept.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            format!("'{}", ident_at(kept, 1))
        }
        Some(TokenTree::Ident(id)) if id.to_string() == "const" => ident_at(kept, 1),
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive input: malformed generic parameter near {other:?}"),
    };

    GenericParam { decl, name }
}

fn ident_at(tokens: &[TokenTree], idx: usize) -> String {
    match tokens.get(idx) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive input: expected identifier, found {other:?}"),
    }
}

fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let target = parse_target(input);
    let decls: Vec<&str> = target.params.iter().map(|p| p.decl.as_str()).collect();
    let names: Vec<&str> = target.params.iter().map(|p| p.name.as_str()).collect();

    let (trait_path, impl_generics) = if deserialize {
        let mut g = vec!["'de".to_string()];
        g.extend(decls.iter().map(|d| d.to_string()));
        ("::serde::Deserialize<'de>".to_string(), g)
    } else {
        (
            "::serde::Serialize".to_string(),
            decls.iter().map(|d| d.to_string()).collect(),
        )
    };

    let impl_generics = if impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_generics.join(", "))
    };
    let ty_generics = if names.is_empty() {
        String::new()
    } else {
        format!("<{}>", names.join(", "))
    };

    let code = format!(
        "#[automatically_derived] impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = target.name,
    );
    code.parse().expect("generated impl parses")
}

/// Derives the marker `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

/// Derives the marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}
