//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro over `arg in strategy` parameters, `any::<T>()` for primitive
//! types, integer/float range strategies, and the `prop_assert*` macros.
//!
//! Each generated test runs a fixed number of deterministic cases
//! (`DEFAULT_CASES`, overridable via the `PROPTEST_CASES` environment
//! variable). For 8-bit operand domains — the common case in this tree —
//! the first cases additionally walk an edge-value grid (min/max/zero
//! combinations) before switching to pseudo-random sampling, which is where
//! real proptest finds most of its counterexamples. Shrinking is not
//! implemented; the failing inputs are reported instead.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs by default.
pub const DEFAULT_CASES: u32 = 512;

/// Returns the configured case count (`PROPTEST_CASES` or
/// [`DEFAULT_CASES`]).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic source of randomness handed to strategies.
pub struct TestRng {
    rng: StdRng,
    /// Index of the case currently being generated; lets strategies emit
    /// edge values first.
    pub case: u32,
    /// Index of the argument within the current case.
    pub arg: u32,
}

impl TestRng {
    /// A fixed-seed RNG: every `cargo test` run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(0x5eed_cafe_f00d_u64),
            case: 0,
            arg: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Error carried out of a failing property body by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` in spirit
/// (sampling only — no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates the value for the current case.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Walk an edge grid first: each argument cycles through
                    // min/max/zero/one before random sampling, so pairs of
                    // 8-bit operands cover the corner combinations early.
                    const EDGES: [i128; 6] =
                        [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128, 16];
                    let idx = rng.case as usize;
                    if idx < EDGES.len() * EDGES.len() {
                        let pick = if rng.arg % 2 == 0 {
                            idx / EDGES.len()
                        } else {
                            idx % EDGES.len()
                        };
                        return EDGES[pick] as $t;
                    }
                    rng.next_u64() as $t
                }
            }
        )*
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*
    };
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, case_count, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in any::<u8>(), w in any::<i8>()) {
///         prop_assert!(x as i32 + w as i32 <= 255 + 127);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic();
                let __cases = $crate::case_count();
                for __case in 0..__cases {
                    __rng.case = __case;
                    __rng.arg = 0;
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);
                        __rng.arg += 1;
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $(&$arg,)*
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; Ok(()) })();
                    if let Err(__e) = __result {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, __cases, __e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with the inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (both: {:?})",
                format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn edge_grid_then_random(x in any::<u8>(), w in any::<i8>()) {
            // The property machinery itself: values are in domain and the
            // assertion macros accept all supported forms.
            prop_assert!(u32::from(x) <= 255);
            prop_assert!(i32::from(w) >= -128, "w was {}", w);
            prop_assert_eq!(x, x);
            prop_assert_ne!(i32::from(w) - 1, i32::from(w));
        }

        #[test]
        fn ranges_are_strategies(i in 0usize..10, f in -0.5f32..0.5) {
            prop_assert!(i < 10);
            prop_assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn edge_values_cover_corners() {
        let mut rng = TestRng::deterministic();
        let mut seen_min_max = false;
        for case in 0..64 {
            rng.case = case;
            rng.arg = 0;
            let x = u8::arbitrary(&mut rng);
            rng.arg = 1;
            let w = i8::arbitrary(&mut rng);
            if x == 255 && w == -128 {
                seen_min_max = true;
            }
        }
        assert!(seen_min_max, "edge grid must pair u8::MAX with i8::MIN");
    }
}
