//! Offline stand-in for the `serde` crate.
//!
//! The workspace only uses `serde` through `#[derive(Serialize, Deserialize)]`
//! on plain data types — no serializer is ever instantiated (there is no
//! `serde_json` or other format crate in the tree). Because the build
//! environment has no network access to crates.io, this vendored shim
//! provides the two traits as derivable markers with the same names and
//! paths, so every `use serde::{Deserialize, Serialize}` and derive in the
//! workspace compiles unchanged. Swapping in the real `serde` later only
//! requires editing `[workspace.dependencies]`.

/// Marker form of `serde::Serialize`.
///
/// Derivable via `#[derive(Serialize)]` (re-exported from `serde_derive`
/// under the `derive` feature, mirroring the real crate layout).
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker form of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// `serde::de` module surface (trait re-exports only).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` module surface (trait re-exports only).
pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    String,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
