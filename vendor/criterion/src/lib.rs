//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the configuration builder, benchmark groups, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros the
//! workspace's benches use. Measurement is a straightforward
//! warm-up-then-sample loop reporting the mean, median, and min wall-clock
//! time per iteration — statistically far simpler than real criterion, but
//! producing comparable relative numbers for the coarse-grained experiment
//! kernels benchmarked here.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on: the shim
/// always re-runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in real criterion.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// Setup re-runs every iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher<'a> {
    config: &'a Config,
}

impl Bencher<'_> {
    fn run_samples(&mut self, mut one_iteration: impl FnMut() -> Duration) {
        // Warm up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            one_iteration();
        }
        // Sample until either the sample budget or the time budget runs out.
        let deadline = Instant::now() + self.config.measurement_time;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            samples.push(one_iteration());
            if Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "    time: [min {:>12?}  median {:>12?}  mean {:>12?}]  ({} samples)",
            min,
            median,
            mean,
            samples.len()
        );
    }

    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run_samples(|| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` on a fresh input from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run_samples(|| {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            start.elapsed()
        });
    }

    /// Like [`Bencher::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.run_samples(|| {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            start.elapsed()
        });
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Overrides the warm-up time for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        println!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            config: &self.config,
        };
        f(&mut bencher);
        self
    }

    /// Finishes the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Overrides the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.config.warm_up_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            name: name.into(),
            config,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        println!("{id}");
        let mut bencher = Bencher {
            config: &self.config,
        };
        f(&mut bencher);
        self
    }

    /// Final reporting hook (no-op in the shim; kept for API parity).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, in either the simple or the
/// `name =` / `config =` / `targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
