//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no network access, so this vendored shim
//! provides the pieces of `rand` the workspace actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! half-open and inclusive integer/float ranges — with the same module
//! paths. The generator is xoshiro256++ seeded through SplitMix64, which is
//! deterministic, seedable, and statistically strong enough for the
//! synthetic-tensor workloads here. It intentionally does NOT promise the
//! same value stream as the real `StdRng` (ChaCha12): tests in this
//! workspace only rely on determinism per seed, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (fully deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from OS entropy. Offline shim: seeds from a
    /// process-local atomic counter, so successive calls *within* one
    /// process differ but the sequence repeats identically across runs —
    /// do not rely on it for run-to-run variation (nothing in this tree
    /// does).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(COUNTER.fetch_add(0xa076_1d64_78bd_642f, Ordering::Relaxed))
    }
}

/// Types samplable uniformly from the full bit stream (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range`, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    // Widening multiply keeps the modulo bias negligible for
                    // every span representable here.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                    self.start.wrapping_add(hi as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as $u).wrapping_sub(start as $u);
                    if span == <$u>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as $u;
                    start.wrapping_add(hi as $t)
                }
            }
        )*
    };
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as Standard>::sample_standard(rng);
                    let v = self.start + unit * (self.end - self.start);
                    // `start + unit*(end-start)` can round up to exactly
                    // `end` for tiny spans; clamp to keep the half-open
                    // contract.
                    if v < self.end {
                        v
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
        )*
    };
}
impl_range_float!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of an inferred type (uniform over the type's values
    /// for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, RANGE: SampleRange<T>>(&mut self, range: RANGE) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator types (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Offline stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; the stream differs from the real
    /// `StdRng` (which this workspace never relies on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng()` stand-in: a fresh entropy-seeded generator.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Distribution plumbing (`rand::distributions`), the subset `rand_distr`
/// builds on.
pub mod distributions {
    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: crate::RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let k = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
