//! Pruning versus speedup: magnitude-prunes the weights of a synthetic
//! ResNet-18-style layer set at several sparsity levels and reports how the
//! 4-threaded SySMT's precision-reduction rate and per-layer MSE respond —
//! the mechanism behind Fig. 10 (pruned inputs collide less often).
//!
//! ```text
//! cargo run --release --example pruning_speedup
//! ```

use nbsmt_repro::core::matmul::{reference_output, NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_repro::core::metrics::{layer_error, model_speedup, LayerSchedule};
use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::core::ThreadCount;
use nbsmt_repro::workloads::calib::{synthesize_model, SynthesisOptions};
use nbsmt_repro::workloads::zoo::resnet18;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = resnet18();
    println!(
        "ResNet-18 proxy: {} NB-SMT layers, {:.2} GMAC/image",
        model.nbsmt_layers().len(),
        model.conv_mac_ops() as f64 / 1e9
    );

    for pruned in [0.0, 0.2, 0.4, 0.6] {
        let options = SynthesisOptions {
            max_rows: 96,
            max_cols: 48,
            weight_sparsity_override: Some(pruned),
            ..SynthesisOptions::default()
        };
        let layers = synthesize_model(&model, &options);
        // Sample every fourth layer to keep the example fast.
        let mut total_mse = 0.0;
        let mut total_reduction_rate = 0.0;
        let mut sampled = 0usize;
        for layer in layers.iter().step_by(4) {
            let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
                threads: ThreadCount::Four,
                policy: SharingPolicy::S_A,
                reorder: true,
            });
            let out = emu.execute(&layer.activations, &layer.weights)?;
            let reference = reference_output(&layer.activations, &layer.weights)?;
            total_mse += layer_error(&out.output, &reference).relative_mse;
            total_reduction_rate += out.stats.reduction_rate();
            sampled += 1;
        }
        // Architectural speedup when every NB-SMT layer runs at 4 threads.
        let speedup = model_speedup(
            &layers
                .iter()
                .map(|l| LayerSchedule {
                    mac_ops: l.mac_ops,
                    threads: 4,
                })
                .collect::<Vec<_>>(),
        );
        println!(
            "{:>3.0}% pruned | speedup {:.1}x | mean relative MSE {:.3e} | {:.1}% of active threads reduced",
            pruned * 100.0,
            speedup,
            total_mse / sampled as f64,
            total_reduction_rate / sampled as f64 * 100.0
        );
    }
    println!("\nMore pruning -> fewer collisions -> fewer precision reductions and lower error,");
    println!("which is exactly the trend Fig. 10 exploits.");
    Ok(())
}
