//! Energy report: estimates per-model energy of the conventional array and
//! the 2T/4T SySMT cores using the Eq. 6 model and the calibrated synthetic
//! layer utilizations (the §V-A energy analysis).
//!
//! ```text
//! cargo run --release --example energy_report
//! ```

use nbsmt_repro::core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::core::ThreadCount;
use nbsmt_repro::hw::energy::{compare_energy, EnergyModel, LayerEnergyInput};
use nbsmt_repro::hw::table2::DesignPoint;
use nbsmt_repro::sparsity::stats::layer_utilization;
use nbsmt_repro::workloads::calib::{synthesize_model, SynthesisOptions};
use nbsmt_repro::workloads::zoo::table1_models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = SynthesisOptions {
        max_rows: 64,
        max_cols: 32,
        ..SynthesisOptions::default()
    };
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "Model", "SA energy", "2T energy", "2T saving", "4T saving"
    );
    for model in table1_models() {
        let layers = synthesize_model(&model, &options);
        let mut baseline = Vec::new();
        let mut sysmt2 = Vec::new();
        let mut sysmt4 = Vec::new();
        for layer in &layers {
            let base_util =
                layer_utilization(&layer.activations, &layer.weights, 4).busy_fraction();
            let util = |threads: ThreadCount| -> f64 {
                NbSmtMatmul::new(NbSmtMatmulConfig {
                    threads,
                    policy: SharingPolicy::S_A,
                    reorder: true,
                })
                .execute(&layer.activations, &layer.weights)
                .map(|o| o.stats.utilization())
                .unwrap_or(base_util)
            };
            baseline.push(LayerEnergyInput {
                mac_ops: layer.mac_ops,
                utilization: base_util,
                threads: 1,
            });
            sysmt2.push(LayerEnergyInput {
                mac_ops: layer.mac_ops,
                utilization: util(ThreadCount::Two),
                threads: 2,
            });
            sysmt4.push(LayerEnergyInput {
                mac_ops: layer.mac_ops,
                utilization: util(ThreadCount::Four),
                threads: 4,
            });
        }
        let cmp2 = compare_energy(DesignPoint::Sysmt2T, &baseline, &sysmt2);
        let cmp4 = compare_energy(DesignPoint::Sysmt4T, &baseline, &sysmt4);
        let sa_energy = EnergyModel::new(DesignPoint::Baseline).model_energy_mj(&baseline);
        println!(
            "{:<14} {:>11.2} mJ {:>11.2} mJ {:>11.1}% {:>11.1}%",
            model.name,
            sa_energy,
            cmp2.sysmt_mj,
            cmp2.saving() * 100.0,
            cmp4.saving() * 100.0
        );
    }
    println!("\nThe paper reports average savings of roughly 33% (2T) and 35-39% (4T).");
    Ok(())
}
