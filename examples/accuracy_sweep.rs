//! Accuracy sweep: trains SynthNet, quantizes it, and evaluates it under the
//! conventional array, a 2-threaded SySMT with several sharing policies, and
//! a 4-threaded SySMT — the end-to-end pipeline behind Tables III–V.
//!
//! ```text
//! cargo run --release --example accuracy_sweep
//! ```

use nbsmt_repro::core::policy::SharingPolicy;
use nbsmt_repro::core::ThreadCount;
use nbsmt_repro::nn::quantized::{QuantizedModel, ReferenceEngine};
use nbsmt_repro::workloads::synthnet::{generate_dataset, train_synthnet, SynthTaskConfig};

// The NB-SMT GEMM engine lives in the bench crate; this example reimplements
// the minimal version inline to show how the pieces compose from the public
// API alone.
use nbsmt_repro::core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
use nbsmt_repro::nn::quantized::GemmEngine;
use nbsmt_repro::nn::NnError;
use nbsmt_repro::quant::qtensor::{QuantMatrix, QuantWeightMatrix};
use nbsmt_repro::tensor::exec::ExecContext;
use nbsmt_repro::tensor::tensor::Matrix;

struct SimpleNbSmtEngine {
    threads: ThreadCount,
    policy: SharingPolicy,
}

impl GemmEngine for SimpleNbSmtEngine {
    fn gemm(
        &mut self,
        ctx: &ExecContext,
        layer_index: usize,
        x: &QuantMatrix,
        w: &QuantWeightMatrix,
    ) -> Result<Matrix<f32>, NnError> {
        // The paper leaves the first convolution at one thread.
        let threads = if layer_index == 0 {
            ThreadCount::One
        } else {
            self.threads
        };
        let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
            threads,
            policy: self.policy,
            reorder: true,
        });
        Ok(emu.execute_with(ctx, x, w).map_err(NnError::from)?.output)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = SynthTaskConfig {
        classes: 6,
        image_size: 16,
        noise: 0.25,
    };
    println!("Training SynthNet on the procedural dataset…");
    let trained = train_synthnet(&task, 40, 20, 8, 7)?;
    println!(
        "FP32 test accuracy: {:.2}%",
        trained.test_accuracy()? * 100.0
    );

    let calib = generate_dataset(&task, 8, 99);
    let (calib_images, _) = calib.batch(0, calib.len());
    let quantized = QuantizedModel::calibrate(&trained.model, &[calib_images])?;
    let (test_images, test_labels) = trained.test.batch(0, trained.test.len());

    let baseline = quantized.accuracy_with(&test_images, &test_labels, &mut ReferenceEngine)?;
    println!("A8W8 (conventional SA) accuracy: {:.2}%", baseline * 100.0);

    for (label, threads, policy) in [
        ("2T, S only ", ThreadCount::Two, SharingPolicy::S),
        ("2T, S+A    ", ThreadCount::Two, SharingPolicy::S_A),
        ("2T, S+Aw   ", ThreadCount::Two, SharingPolicy::S_AW),
        ("4T, S+A    ", ThreadCount::Four, SharingPolicy::S_A),
    ] {
        let mut engine = SimpleNbSmtEngine { threads, policy };
        let acc = quantized.accuracy_with(&test_images, &test_labels, &mut engine)?;
        println!(
            "{label} accuracy: {:.2}%  (drop {:+.2} pts)",
            acc * 100.0,
            (acc - baseline) * 100.0
        );
    }
    Ok(())
}
