//! Quickstart: run one quantized layer on the conventional systolic array and
//! on a 2-threaded SySMT, and compare cycles, utilization, and error.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nbsmt_repro::prelude::*;
use nbsmt_repro::quant::quantize::{quantize_activations, quantize_weights};
use nbsmt_repro::tensor::random::{SynthesisConfig, TensorSynthesizer};
use nbsmt_repro::tensor::tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize one realistic layer: post-ReLU activations with ~60%
    //    zeros, bell-shaped weights.
    let (m, k, n) = (96, 192, 48);
    let mut synth = TensorSynthesizer::new(42);
    let x = synth.tensor(&SynthesisConfig::activation(0.3, 0.25), &[m, k]);
    let w = synth.tensor(&SynthesisConfig::weight(0.08, 0.0), &[k, n]);

    // 2. Quantize exactly as the paper does: unsigned per-layer activations,
    //    signed per-kernel weights.
    let qx = quantize_activations(
        &Matrix::from_vec(x.into_vec(), m, k)?,
        &QuantScheme::activation_a8(),
        Some((0.0, 1.0)),
    );
    let qw = quantize_weights(
        &Matrix::from_vec(w.into_vec(), k, n)?,
        &QuantScheme::weight_w8(),
    );
    println!(
        "Layer {}x{}x{} | activation sparsity {:.1}%",
        m,
        k,
        n,
        qx.sparsity() * 100.0
    );

    // 3. Baseline: the conventional 16x16 output-stationary systolic array.
    let baseline = OutputStationaryArray::new(SystolicConfig::paper_16x16());
    let base = baseline.matmul(qx.values(), qw.values())?;
    println!(
        "Conventional SA : {} cycles, {:.1}% MAC utilization",
        base.stats.cycles,
        base.stats.utilization() * 100.0
    );

    // 4. SySMT: the same layer with 2 threads sharing each PE.
    let sysmt = SySmtArray::new(SySmtConfig::paper_2t());
    let result = sysmt.execute_layer(&qx, &qw)?;
    println!(
        "2T SySMT        : {} cycles ({:.2}x speedup), {:.1}% utilization ({:.2}x gain)",
        result.cycles,
        result.speedup(),
        result.utilization * 100.0,
        result.utilization_gain()
    );
    println!(
        "Precision-reduction error: relative MSE {:.3e}, max abs error {:.3}",
        result.error.relative_mse, result.error.max_abs_error
    );

    // 5. The same emulation through the functional API.
    let emu = NbSmtMatmul::new(NbSmtMatmulConfig {
        threads: nbsmt_repro::core::ThreadCount::Four,
        policy: SharingPolicy::S_A,
        reorder: true,
    });
    let four = emu.execute(&qx, &qw)?;
    println!(
        "4T NB-SMT       : {:.1}% of active thread slots were precision-reduced",
        four.stats.reduction_rate() * 100.0
    );
    Ok(())
}
