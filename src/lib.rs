//! # nbsmt-repro
//!
//! Umbrella crate for the reproduction of *"Non-Blocking Simultaneous
//! Multithreading: Embracing the Resiliency of Deep Neural Networks"*
//! (Shomron & Weiser, MICRO 2020).
//!
//! This crate simply re-exports the workspace crates so that the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` can use one import root.
//!
//! ```
//! use nbsmt_repro::core::fmul::FlexMultiplier;
//!
//! let fmul = FlexMultiplier::new();
//! // one full 8b-8b multiplication
//! let product = fmul.mul_single(200, -35);
//! assert_eq!(product, 200 * -35);
//! ```

pub use nbsmt_core as core;
pub use nbsmt_hw as hw;
pub use nbsmt_nn as nn;
pub use nbsmt_quant as quant;
pub use nbsmt_serve as serve;
pub use nbsmt_sparsity as sparsity;
pub use nbsmt_systolic as systolic;
pub use nbsmt_tensor as tensor;
pub use nbsmt_workloads as workloads;

/// Convenience prelude that pulls in the most commonly used types across the
/// workspace.
pub mod prelude {
    pub use nbsmt_core::matmul::{NbSmtMatmul, NbSmtMatmulConfig};
    pub use nbsmt_core::pe::{SmtPe2, SmtPe4, ThreadInput};
    pub use nbsmt_core::policy::SharingPolicy;
    pub use nbsmt_core::sysmt::{SySmtArray, SySmtConfig};
    pub use nbsmt_core::ThreadCount;
    pub use nbsmt_hw::energy::EnergyModel;
    pub use nbsmt_nn::model::Model;
    pub use nbsmt_quant::qtensor::{QuantMatrix, QuantTensor};
    pub use nbsmt_quant::scheme::QuantScheme;
    pub use nbsmt_serve::config::{
        AdaptivePolicy, BatchPolicy, ConfigError, PoolConfig, RoutePolicy, SchedulerConfig,
        SmtConfig, SubmitError,
    };
    pub use nbsmt_serve::pool::{PoolClient, PoolSnapshot, ReplicaPool};
    pub use nbsmt_serve::registry::ModelRegistry;
    pub use nbsmt_serve::server::Server;
    pub use nbsmt_serve::session::{Inference, Session};
    pub use nbsmt_serve::sim::{
        simulate, simulate_pool, simulate_pool_stats, ArrivalProcess, PoolSimOutcome, ServiceModel,
    };
    pub use nbsmt_serve::traffic::{SizeModel, TrafficModel};
    pub use nbsmt_sparsity::stats::UtilizationBreakdown;
    pub use nbsmt_systolic::array::{OutputStationaryArray, SystolicConfig};
    pub use nbsmt_tensor::exec::{ExecConfig, ExecContext, GemmBackend, GemmBackendKind};
    pub use nbsmt_tensor::tensor::Tensor;
    pub use nbsmt_tensor::validate::{ExecConfigError, Validate};
}
